//! The span layer: per-request, per-stage latency tracing.

use crate::{Histogram, Registry};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The stages of the serving request path, from TCP read to response write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Request-line JSON parsing and payload extraction.
    Parse,
    /// Circuit ingestion: format parsing, AIG transformation and graph
    /// encoding (skipped on a structural-cache hit).
    Encode,
    /// Inference-plan construction (skipped on a structural-cache hit).
    Plan,
    /// Queueing, batching and model execution.
    Infer,
    /// Response serialisation and the socket write.
    Respond,
}

impl Stage {
    /// Every stage, in request-path order.
    pub const ALL: [Stage; 5] = [
        Stage::Parse,
        Stage::Encode,
        Stage::Plan,
        Stage::Infer,
        Stage::Respond,
    ];

    /// Number of stages.
    pub const COUNT: usize = Stage::ALL.len();

    /// The stage's snake_case name, used in metric series and log records.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Encode => "encode",
            Stage::Plan => "plan",
            Stage::Infer => "infer",
            Stage::Respond => "respond",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The per-stage latency breakdown of one request.
///
/// A trace is created when the request line arrives and accumulates stage
/// durations as the request moves through the path — via the closure-based
/// [`RequestTrace::time`] or the RAII [`RequestTrace::timer`]. Stages that
/// never ran (e.g. `Encode`/`Plan` on a cache hit) stay untouched and are
/// not folded into the per-stage histograms, so each stage histogram's
/// count reflects how often that stage actually executed.
#[derive(Debug)]
pub struct RequestTrace {
    started: Instant,
    stage_ns: [u64; Stage::COUNT],
    touched: [bool; Stage::COUNT],
}

impl RequestTrace {
    /// Starts a trace; total latency is measured from this instant.
    pub fn start() -> Self {
        RequestTrace {
            started: Instant::now(),
            stage_ns: [0; Stage::COUNT],
            touched: [false; Stage::COUNT],
        }
    }

    /// Runs `f`, attributing its wall time to `stage`.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(stage, start.elapsed());
        out
    }

    /// Returns an RAII timer that attributes the time until drop to
    /// `stage`.
    pub fn timer(&mut self, stage: Stage) -> StageTimer<'_> {
        StageTimer {
            trace: self,
            stage,
            started: Instant::now(),
        }
    }

    /// Attributes an already-measured duration to `stage`.
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.stage_ns[stage.index()] += u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.touched[stage.index()] = true;
    }

    /// Nanoseconds attributed to `stage` so far.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns[stage.index()]
    }

    /// Whether `stage` ran at all.
    pub fn ran(&self, stage: Stage) -> bool {
        self.touched[stage.index()]
    }

    /// Wall time since the trace started.
    pub fn total(&self) -> Duration {
        self.started.elapsed()
    }

    /// The instant the trace started — the request's arrival anchor, e.g.
    /// for deadline arithmetic (`arrival + budget`).
    pub fn started_at(&self) -> Instant {
        self.started
    }

    /// The stage that consumed the most time, if any stage ran.
    pub fn dominant(&self) -> Option<Stage> {
        Stage::ALL
            .into_iter()
            .filter(|s| self.ran(*s))
            .max_by_key(|s| self.stage_ns(*s))
    }
}

/// RAII stage timer: attributes its lifetime to a stage on drop. Created by
/// [`RequestTrace::timer`].
#[derive(Debug)]
pub struct StageTimer<'a> {
    trace: &'a mut RequestTrace,
    stage: Stage,
    started: Instant,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        self.trace.add(self.stage, elapsed);
    }
}

/// One registered histogram per [`Stage`] plus a total-latency histogram —
/// the aggregation target completed request traces fold into.
#[derive(Debug, Clone)]
pub struct StageSet {
    stages: [Arc<Histogram>; Stage::COUNT],
    /// End-to-end request latency (TCP read to response write).
    pub total: Arc<Histogram>,
}

impl StageSet {
    /// Registers `stage_<name>_ns` histograms for every stage and
    /// `<total_name>` for the end-to-end latency.
    pub fn registered(registry: &Registry, total_name: &str) -> Self {
        StageSet {
            stages: Stage::ALL
                .map(|stage| registry.histogram(&format!("stage_{}_ns", stage.name()))),
            total: registry.histogram(total_name),
        }
    }

    /// The histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &Arc<Histogram> {
        &self.stages[stage.index()]
    }

    /// Folds a completed trace in: every stage that ran records its
    /// nanoseconds, and the total histogram records the end-to-end wall
    /// time.
    pub fn observe(&self, trace: &RequestTrace) {
        for stage in Stage::ALL {
            if trace.ran(stage) {
                self.stages[stage.index()].record(trace.stage_ns(stage));
            }
        }
        self.total.record_duration(trace.total());
    }
}

/// The slow-request log: renders a structured one-line record for any
/// request whose end-to-end latency crosses a threshold, naming the
/// dominant stage.
#[derive(Debug, Clone, Copy)]
pub struct SlowLog {
    threshold: Duration,
}

impl SlowLog {
    /// Creates a slow log with the given threshold. A zero threshold logs
    /// every request — useful for demos and smoke tests.
    pub fn new(threshold: Duration) -> Self {
        SlowLog { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Renders the log record for a completed trace if it crossed the
    /// threshold. The record is one line of `key=value` pairs: the verb and
    /// request label, total milliseconds, the dominant stage, and the
    /// milliseconds of every stage that ran.
    pub fn check(&self, verb: &str, label: &str, trace: &RequestTrace) -> Option<String> {
        let total = trace.total();
        if total < self.threshold {
            return None;
        }
        let mut line = format!(
            "slow-request verb={verb} name={label} total_ms={:.3}",
            total.as_secs_f64() * 1e3,
        );
        if let Some(dominant) = trace.dominant() {
            let _ = write!(line, " dominant={}", dominant.name());
        }
        for stage in Stage::ALL {
            if trace.ran(stage) {
                let _ = write!(
                    line,
                    " {}_ms={:.3}",
                    stage.name(),
                    trace.stage_ns(stage) as f64 / 1e6,
                );
            }
        }
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_accumulate_through_closures_and_timers() {
        let mut trace = RequestTrace::start();
        trace.time(Stage::Parse, || {
            std::thread::sleep(Duration::from_micros(200))
        });
        {
            let _timer = trace.timer(Stage::Infer);
            std::thread::sleep(Duration::from_millis(2));
        }
        trace.add(Stage::Infer, Duration::from_millis(1));
        assert!(trace.ran(Stage::Parse));
        assert!(trace.ran(Stage::Infer));
        assert!(!trace.ran(Stage::Encode));
        assert!(trace.stage_ns(Stage::Infer) >= 3_000_000);
        assert_eq!(trace.dominant(), Some(Stage::Infer));
        assert!(trace.total() >= Duration::from_millis(2));
    }

    #[test]
    fn untouched_trace_has_no_dominant_stage() {
        let trace = RequestTrace::start();
        assert_eq!(trace.dominant(), None);
    }

    #[test]
    fn stage_set_only_records_stages_that_ran() {
        let registry = Registry::new();
        let set = StageSet::registered(&registry, "request_latency_ns");
        let mut trace = RequestTrace::start();
        trace.add(Stage::Parse, Duration::from_micros(5));
        trace.add(Stage::Infer, Duration::from_micros(50));
        set.observe(&trace);
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("stage_parse_ns").expect("exists").count, 1);
        assert_eq!(snap.histogram("stage_infer_ns").expect("exists").count, 1);
        assert_eq!(snap.histogram("stage_encode_ns").expect("exists").count, 0);
        assert_eq!(
            snap.histogram("request_latency_ns").expect("exists").count,
            1
        );
    }

    #[test]
    fn slow_log_names_the_dominant_stage() {
        let slow = SlowLog::new(Duration::ZERO);
        let mut trace = RequestTrace::start();
        trace.add(Stage::Encode, Duration::from_millis(1));
        trace.add(Stage::Infer, Duration::from_millis(40));
        trace.add(Stage::Respond, Duration::from_micros(10));
        let line = slow
            .check("predict", "c6288", &trace)
            .expect("zero threshold logs everything");
        assert!(line.starts_with("slow-request verb=predict name=c6288 total_ms="));
        assert!(line.contains("dominant=infer"));
        assert!(line.contains("infer_ms=40.000"));
        assert!(line.contains("encode_ms=1.000"));
        assert!(!line.contains("plan_ms"), "plan never ran: {line}");
    }

    #[test]
    fn slow_log_threshold_filters() {
        let slow = SlowLog::new(Duration::from_secs(3600));
        let mut trace = RequestTrace::start();
        trace.add(Stage::Infer, Duration::from_millis(1));
        assert_eq!(slow.check("predict", "tiny", &trace), None);
        assert_eq!(slow.threshold(), Duration::from_secs(3600));
    }
}
