//! Testability screening of a large design without running full logic
//! simulation: a DeepGate engine trained on small blocks predicts per-gate
//! signal probabilities on a processor-like datapath through an
//! [`deepgate::InferenceSession`], and gates with extreme probabilities are
//! flagged as random-pattern-resistant hotspots — the classic
//! test-point-insertion use case cited in the paper's introduction.
//!
//! ```bash
//! cargo run --release --example testability_hotspots
//! ```

use deepgate::dataset::{generators, LargeDesign};
use deepgate::gnn::evaluate_prediction_error;
use deepgate::prelude::*;

fn main() -> Result<(), DeepGateError> {
    // Train on small arithmetic/control blocks through the engine.
    let mut engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 32,
            num_iterations: 4,
            ..DeepGateConfig::default()
        })
        .trainer(TrainerConfig {
            epochs: 15,
            learning_rate: 3e-3,
            ..TrainerConfig::default()
        })
        .num_patterns(4_096)
        .build()?;
    engine.fit(&NetlistSource::new(vec![
        generators::alu(6),
        generators::ripple_carry_adder(8),
        generators::decoder(4),
        generators::masked_arbiter(8),
    ]))?;

    // Screen a (scaled-down) processor datapath the model never saw, served
    // through a prepared inference session.
    let screened = engine.prepare(&LargeDesignSource::new(LargeDesign::Processor80386, 0.1))?;
    let session = engine.into_session();
    let circuit = &screened[0];
    let prepared = session.prepare(circuit.clone());
    let mut predictions = Vec::new();
    session.predict_into(&prepared, &mut predictions)?;
    let error = evaluate_prediction_error(&predictions, circuit)?;
    println!(
        "screened `{}`: {} gates, prediction error vs simulation {:.4}",
        circuit.name,
        circuit.num_gates(),
        error
    );

    // Rank gates by predicted controllability skew.
    let mut hotspots: Vec<(usize, f32)> = (0..circuit.num_nodes)
        .filter(|&i| circuit.gate_mask[i])
        .map(|i| (i, predictions[i]))
        .collect();
    hotspots.sort_by(|a, b| {
        (a.1 - 0.5)
            .abs()
            .partial_cmp(&(b.1 - 0.5).abs())
            .expect("probabilities are finite")
            .reverse()
    });
    println!("top random-pattern-resistant candidates (predicted vs simulated P(1)):");
    let labels = circuit.labels.as_ref().expect("labelled");
    for (gate, predicted) in hotspots.iter().take(8) {
        println!(
            "  gate {gate:5} level {:3}: predicted {predicted:.3}, simulated {:.3}",
            circuit.levels[*gate], labels[*gate]
        );
    }
    Ok(())
}
