//! Criterion micro-benchmarks of the substrate layers: logic simulation,
//! netlist-to-AIG mapping, optimisation and circuit-graph construction.
//!
//! These quantify the cost of the data-preparation stage of the DeepGate
//! flow (Table I / Section III-B): how fast circuits are normalised to AIG
//! form and labelled with signal probabilities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepgate_aig::{opt, Aig};
use deepgate_dataset::generators;
use deepgate_gnn::{CircuitGraph, FeatureEncoding};
use deepgate_sim::SignalProbability;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("signal_probability_simulation");
    group.sample_size(10);
    for width in [8usize, 16] {
        let netlist = generators::array_multiplier(width);
        let aig = Aig::from_netlist(&netlist).expect("maps to AIG");
        group.bench_with_input(
            BenchmarkId::new("multiplier_aig_4096_patterns", width),
            &aig,
            |b, aig| {
                b.iter(|| {
                    let probs = SignalProbability::simulate(black_box(aig), 4096, 7).unwrap();
                    black_box(probs.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_aig_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("aig_construction");
    group.sample_size(10);
    for width in [16usize, 32] {
        let netlist = generators::alu(width);
        group.bench_with_input(
            BenchmarkId::new("alu_strash", width),
            &netlist,
            |b, netlist| {
                b.iter(|| {
                    let aig = Aig::from_netlist(black_box(netlist)).unwrap();
                    black_box(aig.num_ands())
                })
            },
        );
        let aig = Aig::from_netlist(&netlist).unwrap();
        group.bench_with_input(BenchmarkId::new("alu_optimize", width), &aig, |b, aig| {
            b.iter(|| {
                let optimized = opt::optimize(black_box(aig), 2);
                black_box(optimized.num_ands())
            })
        });
    }
    group.finish();
}

fn bench_circuit_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_graph_preparation");
    group.sample_size(10);
    let netlist = generators::masked_arbiter(48);
    let aig = Aig::from_netlist(&netlist).unwrap();
    let expanded = aig.to_netlist();
    group.bench_function("arbiter_graph_with_reconvergence", |b| {
        b.iter(|| {
            let graph =
                CircuitGraph::from_netlist(black_box(&expanded), FeatureEncoding::AigGates, None);
            black_box(graph.skip_edges.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_aig_construction,
    bench_circuit_graph
);
criterion_main!(benches);
