//! The dynamic micro-batching scheduler: a bounded request queue drained by
//! worker threads that fuse concurrent requests into
//! [`deepgate::InferenceSession`] batches.

use crate::fault::{panic_message, FaultKind, FaultPlan};
use crate::metrics::SchedulerMetrics;
use crate::poll::Waker;
use crate::{ServeConfig, ServeError};
use deepgate::gnn::CircuitGraph;
use deepgate::telemetry::{Registry, Stage};
use deepgate::{InferenceSession, PreparedCircuit};
use serde::Serialize;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One terminal scheduler result addressed back to the event loop by the
/// opaque token its submission carried.
pub(crate) struct Completion {
    /// The token passed to [`Scheduler::submit_async`].
    pub token: u64,
    /// The job's one terminal result.
    pub result: Result<Vec<f32>, ServeError>,
}

/// The nonblocking response path: workers push completions here and wake
/// the event loop, which drains the queue on its next iteration. The push
/// side never blocks on anything but this short mutex, so batch execution
/// is never coupled to socket backpressure.
pub(crate) struct CompletionQueue {
    queue: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl CompletionQueue {
    pub fn new(waker: Waker) -> CompletionQueue {
        CompletionQueue {
            queue: Mutex::new(Vec::new()),
            waker,
        }
    }

    /// Completions can be pushed from a panicking worker's unwind (the
    /// [`Reply`] drop guard), so a poisoned mutex is recovered rather than
    /// propagated — the queued `Vec` is always structurally valid.
    fn push(&self, token: u64, result: Result<Vec<f32>, ServeError>) {
        let mut queue = match self.queue.lock() {
            Ok(queue) => queue,
            Err(poisoned) => poisoned.into_inner(),
        };
        queue.push(Completion { token, result });
        drop(queue);
        self.waker.wake();
    }

    /// Takes every queued completion.
    pub fn drain(&self) -> Vec<Completion> {
        let mut queue = match self.queue.lock() {
            Ok(queue) => queue,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::take(&mut *queue)
    }

    pub fn is_empty(&self) -> bool {
        match self.queue.lock() {
            Ok(queue) => queue.is_empty(),
            Err(poisoned) => poisoned.into_inner().is_empty(),
        }
    }
}

/// How a job's terminal result travels back to its submitter: the
/// blocking mpsc channel of [`Scheduler::predict`], or a completion-queue
/// push that wakes the event loop. Exactly one terminal response per job
/// is guaranteed on both paths — the async variant's drop guard converts
/// a job dropped without a reply (a worker death even panic recovery
/// missed) into an explicit internal error, mirroring what a dropped
/// `Sender` signals to a blocking `recv`.
enum Reply {
    Sync(Sender<Result<Vec<f32>, ServeError>>),
    Async {
        token: u64,
        queue: Arc<CompletionQueue>,
        sent: AtomicBool,
    },
}

impl Reply {
    fn send(&self, result: Result<Vec<f32>, ServeError>) {
        match self {
            Reply::Sync(tx) => {
                let _ = tx.send(result);
            }
            Reply::Async { token, queue, sent } => {
                if !sent.swap(true, Ordering::SeqCst) {
                    queue.push(*token, result);
                }
            }
        }
    }
}

impl Drop for Reply {
    fn drop(&mut self) {
        if let Reply::Async { token, queue, sent } = self {
            if !sent.swap(true, Ordering::SeqCst) {
                queue.push(
                    *token,
                    Err(ServeError::Internal(
                        "worker dropped the response channel without responding".into(),
                    )),
                );
            }
        }
    }
}

/// One queued prediction request: the prepared circuit, the reply path its
/// result is routed back through, and the instant after which the answer is
/// worthless.
struct Job {
    circuit: Arc<PreparedCircuit>,
    respond: Reply,
    /// Expired jobs are shed at batch assembly, before inference.
    deadline: Option<Instant>,
}

/// Scheduler counters, as reported by the `stats` wire verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SchedulerStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with predictions.
    pub completed: u64,
    /// Requests answered with an engine error.
    pub failed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_overloaded: u64,
    /// Queued requests flushed with [`ServeError::ShuttingDown`] during
    /// drain (plus submissions after the drain began).
    pub rejected_shutdown: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests summed over all executed batches (mean batch size is
    /// `batched / batches`).
    pub batched: u64,
    /// Largest batch executed so far.
    pub max_batch_observed: u64,
    /// Requests that shared a batch-mate's prediction instead of running
    /// their own (duplicate circuits deduplicated within a batch).
    pub deduplicated: u64,
    /// Requests whose deadline expired before inference, shed at batch
    /// assembly with [`ServeError::DeadlineExceeded`].
    pub deadline_shed: u64,
    /// Batch executions that panicked and were converted to per-request
    /// internal errors; the worker survived and kept draining.
    pub worker_panics_recovered: u64,
    /// Worker threads that died anyway and were replaced.
    pub worker_respawns: u64,
}

impl SchedulerStats {
    /// Derives the stats from a registry [`Snapshot`] — the server's
    /// one-snapshot `stats` path, so these values are consistent with every
    /// other series read from the same snapshot.
    ///
    /// [`Snapshot`]: deepgate::telemetry::Snapshot
    pub fn from_snapshot(snapshot: &deepgate::telemetry::Snapshot) -> Self {
        SchedulerStats {
            submitted: snapshot.counter("scheduler_submitted_total"),
            completed: snapshot.counter("scheduler_completed_total"),
            failed: snapshot.counter("scheduler_failed_total"),
            rejected_overloaded: snapshot.counter("scheduler_rejected_overloaded_total"),
            rejected_shutdown: snapshot.counter("scheduler_rejected_shutdown_total"),
            batches: snapshot.counter("scheduler_batches_total"),
            batched: snapshot.counter("scheduler_batched_requests_total"),
            max_batch_observed: snapshot.counter("scheduler_max_batch"),
            deduplicated: snapshot.counter("scheduler_deduplicated_total"),
            deadline_shed: snapshot.counter("scheduler_deadline_shed_total"),
            worker_panics_recovered: snapshot.counter("worker_panics_recovered_total"),
            worker_respawns: snapshot.counter("worker_respawns_total"),
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Shared {
    session: InferenceSession,
    max_batch: usize,
    batch_window: Duration,
    queue_depth: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    metrics: SchedulerMetrics,
    faults: Option<Arc<FaultPlan>>,
    /// Handles of workers respawned after a thread death; joined (and
    /// re-drained, since a respawned worker can die too) during shutdown.
    respawned: Mutex<Vec<JoinHandle<()>>>,
}

/// The dynamic micro-batching scheduler.
///
/// Requests enter through [`Scheduler::submit`] into a bounded queue; worker
/// threads drain it in batches. A worker holding one request keeps
/// collecting until it has `max_batch` of them or `batch_window` has
/// elapsed, then deduplicates repeated circuits, executes the distinct
/// remainder as fused disjoint-union graphs and routes each result back to
/// its submitter — so concurrent small requests pay one batched dispatch
/// instead of many sequential ones, repeats of a hot circuit pay a single
/// prediction, and a lone request under light load only ever waits
/// `batch_window`.
///
/// Backpressure is explicit: a full queue rejects with
/// [`ServeError::Overloaded`] rather than queueing unboundedly. Shutdown is
/// graceful: batches already executing complete and respond, still-queued
/// requests are flushed with [`ServeError::ShuttingDown`], and
/// [`Scheduler::shutdown`] joins every worker.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `config.workers` batching workers over a session.
    ///
    /// `config.workers == 0` is allowed and starts none: requests queue up
    /// (and are rejected / flushed per the normal rules) without ever being
    /// served — useful for exercising backpressure and drain behaviour in
    /// tests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if `max_batch` or `queue_depth` is 0.
    pub fn new(session: InferenceSession, config: &ServeConfig) -> Result<Scheduler, ServeError> {
        // Standalone schedulers (tests, embedding without a Server) get a
        // private registry; the Server shares one via `with_metrics`.
        Scheduler::with_metrics(
            session,
            config,
            SchedulerMetrics::registered(&Registry::new()),
        )
    }

    /// [`Scheduler::new`] recording into externally registered telemetry
    /// handles, so the scheduler's series share a registry (and therefore a
    /// snapshot) with the rest of the serving stack.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if `max_batch` or `queue_depth` is 0.
    pub fn with_metrics(
        session: InferenceSession,
        config: &ServeConfig,
        metrics: SchedulerMetrics,
    ) -> Result<Scheduler, ServeError> {
        if config.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be at least 1".into()));
        }
        if config.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be at least 1".into()));
        }
        let shared = Arc::new(Shared {
            session,
            max_batch: config.max_batch,
            batch_window: config.batch_window,
            queue_depth: config.queue_depth,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            metrics,
            faults: config.faults.clone(),
            respawned: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("deepgate-serve-worker-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .map_err(|e| ServeError::Io(format!("spawning worker: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Scheduler {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The session the workers predict through.
    pub fn session(&self) -> &InferenceSession {
        &self.shared.session
    }

    /// Enqueues a prepared circuit with no deadline, returning the channel
    /// its result will arrive on.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] when the queue is full and
    /// [`ServeError::ShuttingDown`] once [`Scheduler::shutdown`] has begun.
    #[allow(clippy::type_complexity)]
    pub fn submit(
        &self,
        circuit: Arc<PreparedCircuit>,
    ) -> Result<Receiver<Result<Vec<f32>, ServeError>>, ServeError> {
        self.submit_with_deadline(circuit, None)
    }

    /// [`Scheduler::submit`] with an optional deadline. A job still queued
    /// when its deadline passes is shed at batch assembly — before any
    /// inference — and answered with [`ServeError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] when the queue is full and
    /// [`ServeError::ShuttingDown`] once [`Scheduler::shutdown`] has begun.
    #[allow(clippy::type_complexity)]
    pub fn submit_with_deadline(
        &self,
        circuit: Arc<PreparedCircuit>,
        deadline: Option<Instant>,
    ) -> Result<Receiver<Result<Vec<f32>, ServeError>>, ServeError> {
        let (respond, receive) = mpsc::channel();
        self.enqueue(circuit, deadline, Reply::Sync(respond))?;
        Ok(receive)
    }

    /// The event loop's nonblocking submission path: on completion the
    /// result is pushed into `completions` under `token` and the loop's
    /// waker fires. Rejections (queue full, shutting down) are returned
    /// synchronously and push nothing — the caller answers inline.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] when the queue is full and
    /// [`ServeError::ShuttingDown`] once [`Scheduler::shutdown`] has begun.
    pub(crate) fn submit_async(
        &self,
        circuit: Arc<PreparedCircuit>,
        deadline: Option<Instant>,
        token: u64,
        completions: &Arc<CompletionQueue>,
    ) -> Result<(), ServeError> {
        self.enqueue(
            circuit,
            deadline,
            Reply::Async {
                token,
                queue: Arc::clone(completions),
                sent: AtomicBool::new(false),
            },
        )
    }

    fn enqueue(
        &self,
        circuit: Arc<PreparedCircuit>,
        deadline: Option<Instant>,
        respond: Reply,
    ) -> Result<(), ServeError> {
        {
            let mut state = self.shared.state.lock().expect("scheduler lock");
            if !state.open {
                self.shared.metrics.rejected_shutdown.inc();
                // `respond` is dropped OUTSIDE the rejection: the caller
                // answers a synchronous Err, so the reply must not also
                // fire its drop-guard completion.
                return Err(self.defuse(respond, ServeError::ShuttingDown));
            }
            if state.jobs.len() >= self.shared.queue_depth {
                self.shared.metrics.rejected_overloaded.inc();
                return Err(self.defuse(
                    respond,
                    ServeError::Overloaded {
                        depth: self.shared.queue_depth,
                    },
                ));
            }
            state.jobs.push_back(Job {
                circuit,
                respond,
                deadline,
            });
            self.shared.metrics.queue_depth.inc();
        }
        self.shared.metrics.submitted.inc();
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Disarms a rejected reply so its drop guard stays silent — the
    /// submitter gets the rejection as the synchronous return value, not
    /// as a completion.
    fn defuse(&self, respond: Reply, error: ServeError) -> ServeError {
        if let Reply::Async { sent, .. } = &respond {
            sent.store(true, Ordering::SeqCst);
        }
        error
    }

    /// Submits and blocks until the result arrives — the per-connection
    /// serving path.
    ///
    /// # Errors
    ///
    /// Propagates [`Scheduler::submit`] rejections and any engine error the
    /// worker hit. A response channel dropped without a response — a worker
    /// died mid-batch in a way even panic recovery missed — reports
    /// [`ServeError::Internal`]; a clean drain reports
    /// [`ServeError::ShuttingDown`] explicitly.
    pub fn predict(&self, circuit: Arc<PreparedCircuit>) -> Result<Vec<f32>, ServeError> {
        self.predict_with_deadline(circuit, None)
    }

    /// [`Scheduler::predict`] with an optional deadline (see
    /// [`Scheduler::submit_with_deadline`]).
    ///
    /// # Errors
    ///
    /// As [`Scheduler::predict`], plus [`ServeError::DeadlineExceeded`]
    /// when the job is shed.
    pub fn predict_with_deadline(
        &self,
        circuit: Arc<PreparedCircuit>,
        deadline: Option<Instant>,
    ) -> Result<Vec<f32>, ServeError> {
        // Every terminal outcome arrives as an explicit message: worker
        // results, deadline sheds, shutdown flushes. A bare RecvError means
        // the jobs were dropped without responding — a worker death that
        // even `catch_unwind` recovery missed — which is an internal fault,
        // NOT a clean shutdown; reporting it as such keeps real drains and
        // lost requests distinguishable to clients.
        self.submit_with_deadline(circuit, deadline)?
            .recv()
            .unwrap_or_else(|_| {
                Err(ServeError::Internal(
                    "worker dropped the response channel without responding".into(),
                ))
            })
    }

    /// Current counters (each read individually; the server's `stats` verb
    /// instead derives [`SchedulerStats`] from one registry snapshot via
    /// [`SchedulerStats::from_snapshot`]).
    pub fn stats(&self) -> SchedulerStats {
        let m = &self.shared.metrics;
        SchedulerStats {
            submitted: m.submitted.get(),
            completed: m.completed.get(),
            failed: m.failed.get(),
            rejected_overloaded: m.rejected_overloaded.get(),
            rejected_shutdown: m.rejected_shutdown.get(),
            batches: m.batches.get(),
            batched: m.batched_requests.get(),
            max_batch_observed: m.max_batch.get(),
            deduplicated: m.deduplicated.get(),
            deadline_shed: m.deadline_shed.get(),
            worker_panics_recovered: m.worker_panics_recovered.get(),
            worker_respawns: m.worker_respawns.get(),
        }
    }

    /// Requests queued right now.
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().expect("scheduler lock").jobs.len()
    }

    /// Graceful drain: closes the queue, answers every still-queued request
    /// with [`ServeError::ShuttingDown`], and joins the workers (which
    /// finish and respond to the batches they already hold). Idempotent.
    pub fn shutdown(&self) {
        let flushed: Vec<Job> = {
            let mut state = self.shared.state.lock().expect("scheduler lock");
            state.open = false;
            state.jobs.drain(..).collect()
        };
        self.shared.not_empty.notify_all();
        self.shared.metrics.queue_depth.add(-(flushed.len() as i64));
        self.shared
            .metrics
            .rejected_shutdown
            .add(flushed.len() as u64);
        for job in flushed {
            job.respond.send(Err(ServeError::ShuttingDown));
        }
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().expect("worker handles lock");
            guard.drain(..).collect()
        };
        for worker in workers {
            let _ = worker.join();
        }
        // A worker that died and respawned registered its replacement in
        // `respawned` before its thread exited, so after joining the
        // originals every replacement is visible here. Replacements can die
        // and respawn too — drain until the list stays empty.
        loop {
            let respawned: Vec<JoinHandle<()>> = {
                let mut guard = self.shared.respawned.lock().expect("respawn handles lock");
                guard.drain(..).collect()
            };
            if respawned.is_empty() {
                break;
            }
            for worker in respawned {
                let _ = worker.join();
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Last line of defence under a worker-thread death: batch-level panics are
/// already caught and answered inside [`execute`], but if a panic escapes
/// anyway (a double panic, a poisoned invariant in the batch-collection
/// path, an injected fault outside the guarded region), this guard's drop —
/// which runs while the thread unwinds — spawns a replacement so the queue
/// never loses drain capacity.
struct RespawnGuard {
    shared: Arc<Shared>,
    index: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return; // clean exit: the queue closed
        }
        if self.shared.state.is_poisoned() {
            // The panic happened while the queue lock was held: every
            // future worker would panic on the same poisoned lock, and
            // respawning would storm. Leave the scheduler broken (waiters
            // get Internal errors from their dropped channels) rather than
            // spin.
            return;
        }
        self.shared.metrics.worker_respawns.inc();
        let shared = Arc::clone(&self.shared);
        let index = self.index;
        // A spawn failure here would truly lose a worker, but must not
        // panic inside a drop-during-unwind (that would abort the process —
        // the opposite of resilience).
        if let Ok(handle) = std::thread::Builder::new()
            .name(format!("deepgate-serve-worker-{index}-respawn"))
            .spawn(move || worker_loop(shared, index))
        {
            self.shared
                .respawned
                .lock()
                .expect("respawn handles lock")
                .push(handle);
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    let _guard = RespawnGuard {
        shared: Arc::clone(&shared),
        index,
    };
    while let Some(jobs) = next_batch(&shared) {
        execute(&shared, jobs);
    }
}

/// Blocks for work, then keeps the queue drained into one batch until the
/// batch is full or `batch_window` has elapsed since the first request was
/// taken. Returns `None` once the queue is closed and empty.
fn next_batch(shared: &Shared) -> Option<Vec<Job>> {
    let mut state = shared.state.lock().expect("scheduler lock");
    loop {
        if let Some(first) = state.jobs.pop_front() {
            shared.metrics.queue_depth.dec();
            let mut jobs = vec![first];
            let deadline = Instant::now() + shared.batch_window;
            while jobs.len() < shared.max_batch {
                if let Some(job) = state.jobs.pop_front() {
                    shared.metrics.queue_depth.dec();
                    jobs.push(job);
                    continue;
                }
                if !state.open {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _) = shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .expect("scheduler lock");
                state = next;
            }
            return Some(jobs);
        }
        if !state.open {
            return None;
        }
        state = shared.not_empty.wait(state).expect("scheduler lock");
    }
}

/// Executes one batch and routes every result back to its submitter.
///
/// Already-expired jobs are shed first — before any model work — with
/// [`ServeError::DeadlineExceeded`], so an overloaded scheduler spends its
/// inference budget only on requests someone is still waiting for.
///
/// Requests for the *same* prepared circuit (same cached `Arc`, which is how
/// the structural cache hands out repeats) are deduplicated first: the
/// circuit is predicted once and the result fanned out to every duplicate.
/// The model is immutable for the session's lifetime, so duplicates are
/// guaranteed bit-identical — under a repeated-circuit serving workload this
/// is where most of the micro-batching win comes from, on top of the fused
/// disjoint-union execution of the distinct remainder. A batch-level failure
/// falls back to per-circuit prediction so one poisoned request cannot fail
/// its batch-mates; a batch-level *panic* is caught, answered with
/// per-request internal errors, and the worker keeps draining.
fn execute(shared: &Shared, jobs: Vec<Job>) {
    let metrics = &shared.metrics;

    // Shed-before-infer: a request whose deadline has already passed gets
    // its terminal DeadlineExceeded response now, for the cost of one clock
    // read — not a batch slot.
    let now = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        match job.deadline {
            Some(deadline) if now >= deadline => {
                metrics.deadline_shed.inc();
                job.respond.send(Err(ServeError::DeadlineExceeded));
            }
            _ => live.push(job),
        }
    }
    if live.is_empty() {
        return; // the whole batch expired; no inference, no batch counted
    }
    let jobs = live;

    // Batch execution is guarded: a panic anywhere below (model bug,
    // injected fault) must never strand the submitters blocking on their
    // response channels or kill the worker's drain loop.
    let routed = std::panic::catch_unwind(AssertUnwindSafe(|| execute_batch(shared, &jobs)));
    if let Err(payload) = routed {
        metrics.worker_panics_recovered.inc();
        let message = panic_message(payload.as_ref());
        for job in &jobs {
            metrics.failed.inc();
            job.respond.send(Err(ServeError::Internal(format!(
                "worker panicked: {message}"
            ))));
        }
    }
}

/// The unguarded body of [`execute`]: batch accounting, deduplication,
/// fused prediction and response routing.
fn execute_batch(shared: &Shared, jobs: &[Job]) {
    let metrics = &shared.metrics;
    let batch_start = Instant::now();
    metrics.batches.inc();
    metrics.batched_requests.add(jobs.len() as u64);
    metrics.max_batch.record_max(jobs.len() as u64);
    metrics.batch_size.record(jobs.len() as u64);

    // Infer-stage fault hook: a panic here unwinds into `execute`'s
    // catch_unwind, a delay stalls the batch (pushing queued requests
    // toward their deadlines), an I/O fault fails the batch cleanly.
    if let Some(faults) = &shared.faults {
        match faults.check(Stage::Infer) {
            None => {}
            Some(FaultKind::Panic) => {
                panic!("{}", FaultPlan::message(Stage::Infer, FaultKind::Panic))
            }
            Some(FaultKind::Delay(duration)) => std::thread::sleep(duration),
            Some(FaultKind::IoError) => {
                metrics
                    .batch_latency_ns
                    .record_duration(batch_start.elapsed());
                let message = FaultPlan::message(Stage::Infer, FaultKind::IoError);
                for job in jobs {
                    metrics.failed.inc();
                    job.respond.send(Err(ServeError::Internal(message.clone())));
                }
                return;
            }
        }
    }

    // Group jobs by circuit identity (Arc pointer): cheap, and exact for
    // cache-served repeats. Uncached duplicates simply form singleton
    // groups and run individually.
    let mut group_of_job: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut groups: Vec<usize> = Vec::new(); // index of each group's first job
    let mut index_of: std::collections::HashMap<*const PreparedCircuit, usize> =
        std::collections::HashMap::new();
    for (j, job) in jobs.iter().enumerate() {
        let key = Arc::as_ptr(&job.circuit);
        let group = *index_of.entry(key).or_insert_with(|| {
            groups.push(j);
            groups.len() - 1
        });
        group_of_job.push(group);
    }
    metrics.deduplicated.add((jobs.len() - groups.len()) as u64);

    let distinct: Result<Vec<Vec<f32>>, ServeError> = if groups.len() == 1 {
        // One distinct circuit: its cached plan serves directly, no fusing.
        let mut out = Vec::new();
        shared
            .session
            .predict_into(&jobs[groups[0]].circuit, &mut out)
            .map(|()| vec![out])
            .map_err(ServeError::Engine)
    } else {
        let refs: Vec<&CircuitGraph> = groups.iter().map(|&j| jobs[j].circuit.circuit()).collect();
        let mut out = Vec::new();
        shared
            .session
            .prepare_batch_refs(&refs)
            .and_then(|prepared| shared.session.predict_batch_into(&prepared, &mut out))
            .map(|()| out)
            .map_err(ServeError::Engine)
    };

    // The batch latency is recorded BEFORE responses are routed: once a
    // submitter holds its result, every series this batch touched is
    // already visible, so a snapshot taken at quiescence is exact
    // (`batch_latency_ns.count == scheduler_batches_total`).
    match distinct {
        Ok(results) => {
            metrics
                .batch_latency_ns
                .record_duration(batch_start.elapsed());
            for (job, &group) in jobs.iter().zip(&group_of_job) {
                metrics.completed.inc();
                job.respond.send(Ok(results[group].clone()));
            }
        }
        Err(_) => {
            let results: Vec<Result<Vec<f32>, ServeError>> = jobs
                .iter()
                .map(|job| {
                    let mut out = Vec::new();
                    shared
                        .session
                        .predict_into(&job.circuit, &mut out)
                        .map(|()| out)
                        .map_err(ServeError::Engine)
                })
                .collect();
            metrics
                .batch_latency_ns
                .record_duration(batch_start.elapsed());
            for (job, result) in jobs.iter().zip(results) {
                match result {
                    Ok(probs) => {
                        metrics.completed.inc();
                        job.respond.send(Ok(probs));
                    }
                    Err(e) => {
                        metrics.failed.inc();
                        job.respond.send(Err(e));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate::core::DeepGateConfig;
    use deepgate::{BenchText, Engine};

    fn test_session() -> InferenceSession {
        Engine::builder()
            .model(DeepGateConfig {
                hidden_dim: 8,
                num_iterations: 2,
                regressor_hidden: 4,
                ..DeepGateConfig::default()
            })
            .build()
            .expect("valid configuration")
            .into_session()
    }

    /// Chains of distinct lengths, so per-circuit outputs are
    /// distinguishable by length and value.
    fn chain_circuit(engine_session: &InferenceSession, length: usize) -> Arc<PreparedCircuit> {
        let mut bench = String::from("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nw0 = AND(a, b)\n");
        for i in 1..length {
            bench.push_str(&format!("w{i} = NOT(w{})\n", i - 1));
        }
        bench.push_str(&format!("y = AND(w{}, a)\n", length - 1));
        let engine = Engine::builder()
            .model(DeepGateConfig {
                hidden_dim: 8,
                num_iterations: 2,
                regressor_hidden: 4,
                ..DeepGateConfig::default()
            })
            .build()
            .expect("valid configuration");
        let circuit = engine
            .prepare_unlabelled(&BenchText::new(format!("chain{length}"), bench))
            .expect("chain parses")
            .pop()
            .expect("one circuit");
        Arc::new(engine_session.prepare(circuit))
    }

    #[test]
    fn responses_are_routed_to_their_requests() {
        let session = test_session();
        let circuits: Vec<Arc<PreparedCircuit>> =
            (2..8).map(|n| chain_circuit(&session, n)).collect();
        let expected: Vec<Vec<f32>> = circuits
            .iter()
            .map(|c| session.predict(c.circuit()).expect("predicts"))
            .collect();

        let scheduler = Scheduler::new(
            test_session(),
            &ServeConfig {
                workers: 2,
                max_batch: 4,
                batch_window: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        // Submit everything first so batches actually form, then collect.
        let receivers: Vec<_> = circuits
            .iter()
            .map(|c| scheduler.submit(Arc::clone(c)).expect("queue open"))
            .collect();
        for (i, receiver) in receivers.into_iter().enumerate() {
            let probs = receiver.recv().expect("worker alive").expect("predicts");
            assert_eq!(probs, expected[i], "request {i} got someone else's result");
        }
        let stats = scheduler.stats();
        assert_eq!(stats.completed, circuits.len() as u64);
        assert!(stats.batches >= 1);
        assert_eq!(stats.batched, circuits.len() as u64);
        scheduler.shutdown();
    }

    #[test]
    fn duplicate_circuits_in_a_batch_predict_once_with_identical_results() {
        let session = test_session();
        let a = chain_circuit(&session, 3);
        let b = chain_circuit(&session, 5);
        let expected_a = session.predict(a.circuit()).expect("predicts");
        let expected_b = session.predict(b.circuit()).expect("predicts");

        // No workers: drain one batch by hand so its composition is exact.
        let scheduler = Scheduler::new(
            test_session(),
            &ServeConfig {
                workers: 0,
                max_batch: 8,
                batch_window: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let submitted = [&a, &a, &b, &a, &b];
        let receivers: Vec<_> = submitted
            .iter()
            .map(|c| scheduler.submit(Arc::clone(c)).expect("queue open"))
            .collect();
        let jobs = next_batch(&scheduler.shared).expect("jobs queued");
        assert_eq!(jobs.len(), submitted.len());
        execute(&scheduler.shared, jobs);

        for (circuit, receiver) in submitted.iter().zip(receivers) {
            let probs = receiver.recv().expect("executed").expect("predicts");
            let expected = if Arc::ptr_eq(circuit, &a) {
                &expected_a
            } else {
                &expected_b
            };
            assert_eq!(&probs, expected, "deduplicated result must be exact");
        }
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.deduplicated, 3); // five requests, two distinct circuits
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let session = test_session();
        let circuit = chain_circuit(&session, 3);
        // No workers: the queue can only fill.
        let scheduler = Scheduler::new(
            session,
            &ServeConfig {
                workers: 0,
                queue_depth: 2,
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let _a = scheduler.submit(Arc::clone(&circuit)).expect("first fits");
        let _b = scheduler.submit(Arc::clone(&circuit)).expect("second fits");
        assert!(matches!(
            scheduler.submit(Arc::clone(&circuit)),
            Err(ServeError::Overloaded { depth: 2 })
        ));
        assert_eq!(scheduler.stats().rejected_overloaded, 1);
        assert_eq!(scheduler.queue_len(), 2);
    }

    #[test]
    fn shutdown_flushes_queued_requests_with_clean_errors() {
        let session = test_session();
        let circuit = chain_circuit(&session, 3);
        let scheduler = Scheduler::new(
            session,
            &ServeConfig {
                workers: 0,
                queue_depth: 8,
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let queued: Vec<_> = (0..3)
            .map(|_| scheduler.submit(Arc::clone(&circuit)).expect("queue open"))
            .collect();
        scheduler.shutdown();
        for receiver in queued {
            assert_eq!(
                receiver.recv().expect("response delivered"),
                Err(ServeError::ShuttingDown)
            );
        }
        // Submissions after shutdown are rejected immediately.
        assert!(matches!(
            scheduler.submit(circuit),
            Err(ServeError::ShuttingDown)
        ));
        assert_eq!(scheduler.stats().rejected_shutdown, 4);
        // Idempotent.
        scheduler.shutdown();
    }

    #[test]
    fn expired_requests_are_shed_before_inference() {
        let session = test_session();
        let circuit = chain_circuit(&session, 3);
        // No workers: queue by hand, then drain one batch so the shed point
        // is exercised deterministically.
        let scheduler = Scheduler::new(
            session,
            &ServeConfig {
                workers: 0,
                max_batch: 8,
                batch_window: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let expired = scheduler
            .submit_with_deadline(Arc::clone(&circuit), Some(Instant::now()))
            .expect("queue open");
        let live = scheduler
            .submit_with_deadline(
                Arc::clone(&circuit),
                Some(Instant::now() + Duration::from_secs(3600)),
            )
            .expect("queue open");
        let jobs = next_batch(&scheduler.shared).expect("jobs queued");
        execute(&scheduler.shared, jobs);
        assert_eq!(
            expired.recv().expect("terminal response"),
            Err(ServeError::DeadlineExceeded),
            "expired request must be shed with a clean error"
        );
        assert!(
            live.recv().expect("terminal response").is_ok(),
            "in-budget batch-mate still predicts"
        );
        let stats = scheduler.stats();
        assert_eq!(stats.deadline_shed, 1);
        assert_eq!(stats.completed, 1);
        // Batch accounting covers live jobs only: one batch of one request.
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched, 1);
    }

    #[test]
    fn a_fully_expired_batch_runs_no_inference_and_counts_no_batch() {
        let session = test_session();
        let circuit = chain_circuit(&session, 3);
        let scheduler = Scheduler::new(
            session,
            &ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let receivers: Vec<_> = (0..3)
            .map(|_| {
                scheduler
                    .submit_with_deadline(Arc::clone(&circuit), Some(Instant::now()))
                    .expect("queue open")
            })
            .collect();
        let jobs = next_batch(&scheduler.shared).expect("jobs queued");
        execute(&scheduler.shared, jobs);
        for receiver in receivers {
            assert_eq!(
                receiver.recv().expect("terminal response"),
                Err(ServeError::DeadlineExceeded)
            );
        }
        let stats = scheduler.stats();
        assert_eq!(stats.deadline_shed, 3);
        assert_eq!(stats.batches, 0, "no live work, no batch");
        assert_eq!(stats.batched, 0);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn infer_panics_are_recovered_and_the_worker_keeps_draining() {
        let session = test_session();
        let circuit = chain_circuit(&session, 3);
        let faults =
            Arc::new(FaultPlan::seeded(11).inject_limited(Stage::Infer, FaultKind::Panic, 1.0, 3));
        let scheduler = Scheduler::new(
            session,
            &ServeConfig {
                workers: 1,
                max_batch: 1, // one request per batch: one panic each
                faults: Some(Arc::clone(&faults)),
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        for round in 0..3 {
            let result = scheduler.predict(Arc::clone(&circuit));
            match result {
                Err(ServeError::Internal(msg)) => {
                    assert!(msg.contains("injected fault"), "round {round}: {msg}")
                }
                other => panic!("round {round}: expected Internal, got {other:?}"),
            }
        }
        // Budget spent: the same worker thread — never respawned, the panic
        // was caught — serves the next request normally.
        assert!(faults.exhausted());
        let probs = scheduler
            .predict(Arc::clone(&circuit))
            .expect("worker survived three panics");
        assert!(!probs.is_empty());
        let stats = scheduler.stats();
        assert_eq!(stats.worker_panics_recovered, 3);
        assert_eq!(stats.worker_respawns, 0, "catch_unwind kept the thread");
        assert_eq!(stats.failed, 3);
        assert_eq!(stats.completed, 1);
        scheduler.shutdown();
    }

    #[test]
    fn dropped_response_channel_reports_internal_not_shutting_down() {
        let session = test_session();
        let circuit = chain_circuit(&session, 3);
        let scheduler = Scheduler::new(
            session,
            &ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        // Block a real predict() call on another thread, then simulate a
        // worker dying mid-batch: take its job off the queue and drop it
        // without responding.
        let scheduler = Arc::new(scheduler);
        let caller = {
            let scheduler = Arc::clone(&scheduler);
            std::thread::spawn(move || scheduler.predict(circuit))
        };
        let jobs = loop {
            if let Some(jobs) = {
                // Poll until the caller's submission is visible.
                if scheduler.queue_len() > 0 {
                    next_batch(&scheduler.shared)
                } else {
                    None
                }
            } {
                break jobs;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        drop(jobs);
        // The regression: this used to surface as ShuttingDown, masking a
        // lost request as a clean drain. It must report an internal fault.
        let result = caller.join().expect("caller thread survives");
        assert!(
            matches!(&result, Err(ServeError::Internal(msg)) if msg.contains("without responding")),
            "a dead channel is an internal fault, not a clean shutdown: {result:?}"
        );
    }

    #[test]
    fn a_dying_worker_respawns_and_the_replacement_drains() {
        let session = test_session();
        let circuit = chain_circuit(&session, 3);
        // No workers at start: the only drain capacity will come from the
        // respawn path.
        let scheduler = Scheduler::new(
            session,
            &ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let shared = Arc::clone(&scheduler.shared);
        let dying = std::thread::Builder::new()
            .name("deepgate-serve-worker-7".into())
            .spawn(move || {
                let _guard = RespawnGuard { shared, index: 7 };
                panic!("injected fault: simulated worker death");
            })
            .expect("spawns");
        assert!(dying.join().is_err(), "the worker must actually die");
        // The guard's drop ran during the unwind and spawned a replacement,
        // which now serves requests.
        let probs = scheduler
            .predict(Arc::clone(&circuit))
            .expect("replacement worker drains the queue");
        assert!(!probs.is_empty());
        assert_eq!(scheduler.stats().worker_respawns, 1);
        scheduler.shutdown(); // joins the respawned worker too
    }

    #[test]
    fn scheduler_config_is_validated() {
        assert!(matches!(
            Scheduler::new(
                test_session(),
                &ServeConfig {
                    max_batch: 0,
                    ..ServeConfig::default()
                }
            ),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            Scheduler::new(
                test_session(),
                &ServeConfig {
                    queue_depth: 0,
                    ..ServeConfig::default()
                }
            ),
            Err(ServeError::Config(_))
        ));
    }
}
