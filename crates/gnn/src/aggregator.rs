//! The four aggregation functions compared in the paper: Conv. Sum,
//! Attention, DeepSet and GatedSum.
//!
//! An aggregator turns the hidden states of a node's predecessors into a
//! single message vector per node. All four operate on flattened edge lists:
//! `source_states[e]` is the hidden state of the source of edge `e` and
//! `edge_seg[e]` names the target node (as an index into the current level's
//! target list), so the reduction is a scatter-add over segments.

use deepgate_nn::{
    segment_softmax_tensor, Activation, Graph, Linear, Mlp, ParamStore, Tensor, Var,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The aggregation designs evaluated in Table II of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregatorKind {
    /// Convolutional sum: a shared linear projection of each predecessor
    /// state followed by a sum (Selsam et al.).
    ConvSum,
    /// Additive attention with the target's previous state as query and the
    /// predecessor states as keys (Eq. 5 of the paper).
    Attention,
    /// DeepSet: `ρ(Σ φ(h_u))` with small MLPs for φ and ρ (Amizadeh et al.).
    DeepSet,
    /// Gated sum: a learned sigmoid gate modulates each predecessor state
    /// before summation (Zhang et al., D-VAE).
    GatedSum,
}

impl AggregatorKind {
    /// All aggregator kinds in the order used by the paper's tables.
    pub const ALL: [AggregatorKind; 4] = [
        AggregatorKind::ConvSum,
        AggregatorKind::Attention,
        AggregatorKind::DeepSet,
        AggregatorKind::GatedSum,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            AggregatorKind::ConvSum => "Conv. Sum",
            AggregatorKind::Attention => "Attention",
            AggregatorKind::DeepSet => "DeepSet",
            AggregatorKind::GatedSum => "GatedSum",
        }
    }
}

impl fmt::Display for AggregatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The per-kind parameter bundles, exposed crate-internally so the CSR
/// kernel compiler (`crate::csr`) can bake the weights into flat arrays.
#[derive(Debug, Clone)]
pub(crate) enum AggregatorParams {
    ConvSum {
        project: Linear,
    },
    Attention {
        query: Linear,
        key: Linear,
        edge_attr: Option<Linear>,
    },
    DeepSet {
        phi: Mlp,
        rho: Linear,
    },
    GatedSum {
        gate: Linear,
        value: Linear,
    },
}

/// A parameterised aggregation function over predecessor hidden states.
#[derive(Debug, Clone)]
pub struct Aggregator {
    kind: AggregatorKind,
    hidden_dim: usize,
    edge_attr_dim: usize,
    params: AggregatorParams,
}

impl Aggregator {
    /// Registers an aggregator's parameters in `store`.
    ///
    /// `edge_attr_dim` is the dimensionality of optional edge attributes
    /// (the positional encodings of skip connections); pass 0 when edge
    /// attributes are never supplied. Only the attention aggregator uses
    /// them.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        kind: AggregatorKind,
        hidden_dim: usize,
        edge_attr_dim: usize,
        seed: u64,
    ) -> Self {
        let params = match kind {
            AggregatorKind::ConvSum => AggregatorParams::ConvSum {
                project: Linear::new(
                    store,
                    &format!("{name}.project"),
                    hidden_dim,
                    hidden_dim,
                    seed,
                ),
            },
            AggregatorKind::Attention => AggregatorParams::Attention {
                query: Linear::new(store, &format!("{name}.query"), hidden_dim, 1, seed),
                key: Linear::new(store, &format!("{name}.key"), hidden_dim, 1, seed + 1),
                edge_attr: if edge_attr_dim > 0 {
                    Some(Linear::new(
                        store,
                        &format!("{name}.edge_attr"),
                        edge_attr_dim,
                        1,
                        seed + 2,
                    ))
                } else {
                    None
                },
            },
            AggregatorKind::DeepSet => AggregatorParams::DeepSet {
                phi: Mlp::new(
                    store,
                    &format!("{name}.phi"),
                    &[hidden_dim, hidden_dim],
                    Activation::Relu,
                    false,
                    seed,
                ),
                rho: Linear::new(
                    store,
                    &format!("{name}.rho"),
                    hidden_dim,
                    hidden_dim,
                    seed + 1,
                ),
            },
            AggregatorKind::GatedSum => AggregatorParams::GatedSum {
                gate: Linear::new(store, &format!("{name}.gate"), hidden_dim, hidden_dim, seed),
                value: Linear::new(
                    store,
                    &format!("{name}.value"),
                    hidden_dim,
                    hidden_dim,
                    seed + 1,
                ),
            },
        };
        Aggregator {
            kind,
            hidden_dim,
            edge_attr_dim,
            params,
        }
    }

    /// The aggregator kind.
    pub fn kind(&self) -> AggregatorKind {
        self.kind
    }

    /// The parameter bundle (crate-internal; used by the kernel compiler).
    pub(crate) fn params(&self) -> &AggregatorParams {
        &self.params
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Edge-attribute dimensionality expected by [`Aggregator::aggregate`]
    /// (0 when edge attributes are unused).
    pub fn edge_attr_dim(&self) -> usize {
        self.edge_attr_dim
    }

    /// Aggregates predecessor states into one message per target.
    ///
    /// * `source_states` — `[num_edges, d]` hidden states of edge sources.
    /// * `query_states` — `[num_edges, d]` previous hidden state of each
    ///   edge's target (only read by the attention aggregator).
    /// * `edge_seg` — segment id (target index) of every edge.
    /// * `num_targets` — number of target nodes in this batch.
    /// * `edge_attr` — optional `[num_edges, edge_attr_dim]` edge attributes.
    ///
    /// Returns a `[num_targets, d]` message matrix.
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        source_states: Var,
        query_states: Var,
        edge_seg: &[usize],
        num_targets: usize,
        edge_attr: Option<Var>,
    ) -> Var {
        match &self.params {
            AggregatorParams::ConvSum { project } => {
                let projected = project.forward(g, store, source_states);
                g.scatter_add_rows(projected, edge_seg, num_targets)
            }
            AggregatorParams::Attention {
                query,
                key,
                edge_attr: attr_proj,
            } => {
                let q = query.forward(g, store, query_states);
                let k = key.forward(g, store, source_states);
                let mut score = g.add(q, k);
                if let (Some(proj), Some(attr)) = (attr_proj, edge_attr) {
                    let a = proj.forward(g, store, attr);
                    score = g.add(score, a);
                }
                let alpha = g.segment_softmax(score, edge_seg);
                let weighted = g.mul_col(alpha, source_states);
                g.scatter_add_rows(weighted, edge_seg, num_targets)
            }
            AggregatorParams::DeepSet { phi, rho } => {
                let transformed = phi.forward(g, store, source_states);
                let pooled = g.scatter_add_rows(transformed, edge_seg, num_targets);
                rho.forward(g, store, pooled)
            }
            AggregatorParams::GatedSum { gate, value } => {
                let gate_logits = gate.forward(g, store, source_states);
                let gates = g.sigmoid(gate_logits);
                let values = value.forward(g, store, source_states);
                let gated = g.mul(gates, values);
                g.scatter_add_rows(gated, edge_seg, num_targets)
            }
        }
    }

    /// Gradient-free aggregation on plain tensors (inference path).
    ///
    /// Arguments mirror [`Aggregator::aggregate`].
    pub fn aggregate_tensor(
        &self,
        store: &ParamStore,
        source_states: &Tensor,
        query_states: &Tensor,
        edge_seg: &[usize],
        num_targets: usize,
        edge_attr: Option<&Tensor>,
    ) -> Tensor {
        let scatter = |rows: &Tensor| -> Tensor {
            let mut out = Tensor::zeros(num_targets, rows.cols());
            for (e, &seg) in edge_seg.iter().enumerate() {
                for j in 0..rows.cols() {
                    out.set(seg, j, out.get(seg, j) + rows.get(e, j));
                }
            }
            out
        };
        let sigmoid = |t: Tensor| t.map(|v| 1.0 / (1.0 + (-v).exp()));
        match &self.params {
            AggregatorParams::ConvSum { project } => {
                scatter(&project.forward_tensor(store, source_states))
            }
            AggregatorParams::Attention {
                query,
                key,
                edge_attr: attr_proj,
            } => {
                let mut score = query
                    .forward_tensor(store, query_states)
                    .add(&key.forward_tensor(store, source_states));
                if let (Some(proj), Some(attr)) = (attr_proj, edge_attr) {
                    score = score.add(&proj.forward_tensor(store, attr));
                }
                let alpha = segment_softmax_tensor(&score, edge_seg);
                let mut weighted = source_states.clone();
                for e in 0..weighted.rows() {
                    let w = alpha.get(e, 0);
                    for j in 0..weighted.cols() {
                        weighted.set(e, j, weighted.get(e, j) * w);
                    }
                }
                scatter(&weighted)
            }
            AggregatorParams::DeepSet { phi, rho } => {
                let transformed = phi.forward_tensor(store, source_states);
                rho.forward_tensor(store, &scatter(&transformed))
            }
            AggregatorParams::GatedSum { gate, value } => {
                let gates = sigmoid(gate.forward_tensor(store, source_states));
                let values = value.forward_tensor(store, source_states);
                scatter(&gates.mul(&values))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(kind: AggregatorKind, attr_dim: usize) -> (ParamStore, Aggregator) {
        let mut store = ParamStore::new();
        let agg = Aggregator::new(&mut store, "agg", kind, 8, attr_dim, 7);
        (store, agg)
    }

    #[test]
    fn all_aggregators_produce_target_shaped_messages() {
        for kind in AggregatorKind::ALL {
            let (store, agg) = setup(kind, 0);
            assert_eq!(agg.kind(), kind);
            assert_eq!(agg.hidden_dim(), 8);
            let mut g = Graph::new();
            let src = g.input(Tensor::randn(5, 8, 1.0, 1));
            let qry = g.input(Tensor::randn(5, 8, 1.0, 2));
            let seg = vec![0usize, 0, 1, 2, 2];
            let msg = agg.aggregate(&mut g, &store, src, qry, &seg, 3, None);
            assert_eq!(g.value(msg).shape(), [3, 8], "{kind}");
        }
    }

    #[test]
    fn tensor_and_tape_aggregation_agree() {
        for kind in AggregatorKind::ALL {
            let (store, agg) = setup(kind, 0);
            let src = Tensor::randn(6, 8, 1.0, 3);
            let qry = Tensor::randn(6, 8, 1.0, 4);
            let seg = vec![0usize, 1, 1, 2, 3, 3];
            let mut g = Graph::new();
            let src_v = g.input(src.clone());
            let qry_v = g.input(qry.clone());
            let tape = agg.aggregate(&mut g, &store, src_v, qry_v, &seg, 4, None);
            let tensor = agg.aggregate_tensor(&store, &src, &qry, &seg, 4, None);
            for (a, b) in g.value(tape).as_slice().iter().zip(tensor.as_slice()) {
                assert!((a - b).abs() < 1e-5, "{kind}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn attention_weights_sum_to_one_per_target() {
        let (store, agg) = setup(AggregatorKind::Attention, 0);
        // With identical source states, the attention message must equal the
        // (single) state regardless of how many predecessors a target has,
        // because the weights sum to one.
        let row: Vec<f32> = (0..8).map(|i| i as f32 / 8.0).collect();
        let src = Tensor::from_rows(&[&row, &row, &row]);
        let qry = Tensor::zeros(3, 8);
        let seg = vec![0usize, 0, 0];
        let msg = agg.aggregate_tensor(&store, &src, &qry, &seg, 1, None);
        for (j, &expected) in row.iter().enumerate() {
            assert!((msg.get(0, j) - expected).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_uses_edge_attributes_when_configured() {
        let (store, agg) = setup(AggregatorKind::Attention, 4);
        assert_eq!(agg.edge_attr_dim(), 4);
        let src = Tensor::randn(4, 8, 1.0, 5);
        let qry = Tensor::randn(4, 8, 1.0, 6);
        let seg = vec![0usize, 0, 1, 1];
        let zero_attr = Tensor::zeros(4, 4);
        let strong_attr = Tensor::full(4, 4, 3.0);
        let base = agg.aggregate_tensor(&store, &src, &qry, &seg, 2, Some(&zero_attr));
        let with_attr = agg.aggregate_tensor(&store, &src, &qry, &seg, 2, Some(&strong_attr));
        // Bias applied to all edges of a segment cancels out in softmax only
        // if it is identical per edge; here it is, so results match. Make the
        // attribute differ per edge to observe a change.
        let mut varied = Tensor::zeros(4, 4);
        varied.set(0, 0, 5.0);
        let with_varied = agg.aggregate_tensor(&store, &src, &qry, &seg, 2, Some(&varied));
        let diff_const: f32 = base
            .as_slice()
            .iter()
            .zip(with_attr.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let diff_varied: f32 = base
            .as_slice()
            .iter()
            .zip(with_varied.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff_const < 1e-4);
        assert!(diff_varied > 1e-4);
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(AggregatorKind::ConvSum.label(), "Conv. Sum");
        assert_eq!(AggregatorKind::GatedSum.to_string(), "GatedSum");
        assert_eq!(AggregatorKind::ALL.len(), 4);
    }
}
