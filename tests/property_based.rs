//! Property-based tests over the core data structures and invariants,
//! spanning the netlist, AIG and simulation crates plus the unified
//! Engine/InferenceSession facade.

use deepgate::aig::{opt, Aig, ReconvergenceAnalysis, ReconvergenceConfig};
use deepgate::gnn::{CircuitGraph, FeatureEncoding};
use deepgate::netlist::{bench, GateKind, Netlist, NodeId};
use deepgate::prelude::*;
use deepgate::sim::{simulate_aig_words, simulate_netlist_words};
use proptest::prelude::*;

/// Strategy: a random valid combinational netlist description, as a list of
/// (gate kind index, fan-in picks) build steps over a fixed input count.
fn random_netlist(max_gates: usize) -> impl Strategy<Value = Netlist> {
    let gate_steps = prop::collection::vec((0usize..6, any::<u64>(), any::<u64>()), 1..max_gates);
    (2usize..6, gate_steps).prop_map(|(num_inputs, steps)| {
        let mut netlist = Netlist::new("prop");
        let mut signals: Vec<NodeId> = (0..num_inputs)
            .map(|i| netlist.add_input(format!("x{i}")))
            .collect();
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Not,
        ];
        for (kind_idx, pick_a, pick_b) in steps {
            let kind = kinds[kind_idx];
            let a = signals[(pick_a % signals.len() as u64) as usize];
            let b = signals[(pick_b % signals.len() as u64) as usize];
            let id = if kind == GateKind::Not {
                netlist.add_gate(kind, &[a]).expect("valid arity")
            } else {
                netlist.add_gate(kind, &[a, b]).expect("valid arity")
            };
            signals.push(id);
        }
        let last = *signals.last().expect("at least one signal");
        netlist.mark_output(last, "y");
        // Also expose a mid signal to create multi-output circuits.
        let mid = signals[signals.len() / 2];
        netlist.mark_output(mid, "m");
        netlist
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The AIG mapping is functionally equivalent to the original netlist on
    /// random input words.
    #[test]
    fn aig_mapping_is_functionally_equivalent(
        netlist in random_netlist(40),
        seed in any::<u64>(),
    ) {
        let aig = Aig::from_netlist(&netlist).expect("maps to AIG");
        prop_assert!(aig.validate().is_ok());
        let words: Vec<u64> = (0..netlist.num_inputs())
            .map(|i| seed.rotate_left(i as u32 * 7).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let nv = simulate_netlist_words(&netlist, &words).expect("simulates");
        let av = simulate_aig_words(&aig, &words).expect("simulates");
        for (k, (lit, _)) in aig.outputs().iter().enumerate() {
            let (orig, _) = netlist.outputs()[k];
            let expected = nv[orig.index()];
            let raw = av[lit.node()];
            let got = if lit.is_complemented() { !raw } else { raw };
            prop_assert_eq!(expected, got);
        }
    }

    /// Optimisation passes never change circuit functionality and never
    /// increase the AND count.
    #[test]
    fn optimisation_preserves_function_and_size(
        netlist in random_netlist(40),
        seed in any::<u64>(),
    ) {
        let aig = Aig::from_netlist(&netlist).expect("maps to AIG");
        let optimized = opt::optimize(&aig, 3);
        prop_assert!(optimized.validate().is_ok());
        prop_assert!(optimized.num_ands() <= aig.num_ands());
        let words: Vec<u64> = (0..aig.num_inputs())
            .map(|i| seed.rotate_right(i as u32 * 5) ^ 0xA5A5_5A5A_F0F0_0F0F)
            .collect();
        let before = simulate_aig_words(&aig, &words).expect("simulates");
        let after = simulate_aig_words(&optimized, &words).expect("simulates");
        for (k, (lit_b, _)) in aig.outputs().iter().enumerate() {
            let (lit_a, _) = optimized.outputs()[k];
            let vb = { let v = before[lit_b.node()]; if lit_b.is_complemented() { !v } else { v } };
            let va = { let v = after[lit_a.node()]; if lit_a.is_complemented() { !v } else { v } };
            prop_assert_eq!(vb, va);
        }
    }

    /// BENCH round-trips preserve structure counts.
    #[test]
    fn bench_roundtrip_preserves_counts(netlist in random_netlist(30)) {
        let text = bench::write(&netlist);
        let parsed = bench::parse(&text, "prop").expect("round-trip");
        prop_assert!(parsed.validate().is_ok());
        prop_assert_eq!(parsed.num_inputs(), netlist.num_inputs());
        prop_assert_eq!(parsed.num_outputs(), netlist.num_outputs());
    }

    /// Circuit-graph invariants hold for arbitrary circuits: one-hot
    /// features, edges pointing from lower to higher levels, forward batches
    /// covering every gate exactly once, and skip edges connecting genuine
    /// fan-out stems to later nodes.
    #[test]
    fn circuit_graph_invariants(netlist in random_netlist(40)) {
        let aig = Aig::from_netlist(&netlist).expect("maps to AIG");
        let expanded = aig.to_netlist();
        let graph = CircuitGraph::from_netlist(&expanded, FeatureEncoding::AigGates, None);
        // One-hot features.
        for i in 0..graph.num_nodes {
            let sum: f32 = graph.features.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
        }
        // Edges go forward in level.
        for &(src, dst) in &graph.edges {
            prop_assert!(graph.levels[src] < graph.levels[dst]);
        }
        // Forward batches cover every gate exactly once.
        let covered: usize = graph.forward_batches.iter().map(|b| b.targets.len()).sum();
        prop_assert_eq!(covered, graph.num_gates());
        // Skip edges reference earlier stems with consistent level distance.
        let fanouts = expanded.fanout_counts();
        for edge in &graph.skip_edges {
            prop_assert!(fanouts[edge.source] >= 2);
            prop_assert!(graph.levels[edge.target] > graph.levels[edge.source]);
            prop_assert_eq!(
                graph.levels[edge.target] - graph.levels[edge.source],
                edge.level_difference
            );
        }
    }

    /// Reconvergence analysis is stable under the level-distance bound: a
    /// tighter bound can only find fewer reconvergence nodes.
    #[test]
    fn reconvergence_monotone_in_level_bound(netlist in random_netlist(40)) {
        let aig = Aig::from_netlist(&netlist).expect("maps to AIG");
        let tight = ReconvergenceAnalysis::with_config(
            &aig,
            ReconvergenceConfig { max_level_distance: 4, max_tracked_stems: 48 },
        );
        let loose = ReconvergenceAnalysis::with_config(
            &aig,
            ReconvergenceConfig { max_level_distance: 64, max_tracked_stems: 48 },
        );
        prop_assert!(tight.num_reconvergence_nodes() <= loose.num_reconvergence_nodes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Engine facade invariants on arbitrary circuits: `prepare` labels
    /// every node with a probability, `predict_batch` returns one
    /// probability vector per circuit, and the batched path agrees with the
    /// single-circuit path.
    #[test]
    fn engine_prepares_and_serves_arbitrary_circuits(netlist in random_netlist(25)) {
        let engine = Engine::builder()
            .model(DeepGateConfig {
                hidden_dim: 8,
                num_iterations: 1,
                regressor_hidden: 4,
                ..DeepGateConfig::default()
            })
            .num_patterns(256)
            .build()
            .expect("valid configuration");
        let circuits = engine
            .prepare(&NetlistSource::from(netlist))
            .expect("prepare succeeds");
        for circuit in &circuits {
            let labels = circuit.labels.as_ref().expect("prepared circuits are labelled");
            prop_assert_eq!(labels.len(), circuit.num_nodes);
            prop_assert!(labels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        let session = engine.into_session();
        let batch = session.predict_batch(&circuits).expect("serves");
        prop_assert_eq!(batch.len(), circuits.len());
        for (predictions, circuit) in batch.iter().zip(&circuits) {
            prop_assert_eq!(predictions.len(), circuit.num_nodes);
            prop_assert!(predictions.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let single = session.predict(circuit).expect("serves");
            prop_assert!(single.iter().zip(predictions).all(|(a, b)| (a - b).abs() < 1e-6));
        }
    }
}
