//! Gate-embedding exploration: train DeepGate on a small dataset, then use
//! the learned per-gate vectors to find functionally similar gates across
//! two different circuits — the "general representation" use-case the paper
//! targets for downstream EDA tasks.
//!
//! ```bash
//! cargo run --release --example gate_embeddings
//! ```

use deepgate::aig::Aig;
use deepgate::core::{DeepGate, DeepGateConfig, Trainer, TrainerConfig};
use deepgate::dataset::{generators, labelled_circuit_from_aig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train briefly on a handful of small circuits.
    let training_netlists = vec![
        generators::ripple_carry_adder(6),
        generators::comparator(6),
        generators::priority_arbiter(8),
        generators::parity_tree(12),
    ];
    let mut train = Vec::new();
    for (i, netlist) in training_netlists.iter().enumerate() {
        let aig = Aig::from_netlist(netlist)?;
        train.push(labelled_circuit_from_aig(&aig, 4_096, i as u64)?);
    }
    let mut model = DeepGate::new(DeepGateConfig {
        hidden_dim: 32,
        num_iterations: 4,
        ..DeepGateConfig::default()
    });
    let mut trainer = Trainer::new(TrainerConfig {
        epochs: 15,
        learning_rate: 3e-3,
        ..TrainerConfig::default()
    });
    let inner = model.model().clone();
    trainer.train(&inner, model.store_mut(), &train, &[]);
    println!("trained DeepGate ({} weights) on {} circuits", model.num_weights(), train.len());

    // Embed two unseen circuits and find, for a probe gate in the first, the
    // most similar gates in the second by cosine similarity.
    let probe_aig = Aig::from_netlist(&generators::alu(4))?;
    let other_aig = Aig::from_netlist(&generators::counter_next_state(8))?;
    let probe = labelled_circuit_from_aig(&probe_aig, 4_096, 101)?;
    let other = labelled_circuit_from_aig(&other_aig, 4_096, 102)?;
    let probe_emb = model.embeddings(&probe);
    let other_emb = model.embeddings(&other);

    let cosine = |a: &[f32], b: &[f32]| -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    };

    // Probe: the deepest gate of the ALU circuit.
    let probe_gate = (0..probe.num_nodes)
        .filter(|&i| probe.gate_mask[i])
        .max_by_key(|&i| probe.levels[i])
        .expect("circuit has gates");
    let probe_vec = probe_emb.row(probe_gate);
    let probe_label = probe.labels.as_ref().expect("labelled")[probe_gate];
    println!(
        "probe: ALU gate {probe_gate} at level {} with simulated P(1) = {probe_label:.3}",
        probe.levels[probe_gate]
    );

    let mut matches: Vec<(usize, f32)> = (0..other.num_nodes)
        .filter(|&i| other.gate_mask[i])
        .map(|i| (i, cosine(probe_vec, other_emb.row(i))))
        .collect();
    matches.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite similarity"));
    println!("closest gates in the counter circuit (by embedding cosine similarity):");
    for (gate, sim) in matches.iter().take(5) {
        let label = other.labels.as_ref().expect("labelled")[*gate];
        println!(
            "  gate {gate}: similarity {sim:.3}, level {}, simulated P(1) = {label:.3}",
            other.levels[*gate]
        );
    }
    Ok(())
}
