//! DAG-GNN framework and baseline model zoo for the DeepGate reproduction.
//!
//! The DeepGate paper compares its model against three GNN families — GCN,
//! DAG-ConvGNN and DAG-RecGNN — each instantiated with four aggregator
//! designs (Conv. Sum, Attention, DeepSet, GatedSum). This crate provides:
//!
//! - [`CircuitGraph`] — the learning representation of a circuit: one-hot
//!   gate-type features, predecessor edge lists grouped by logic level
//!   (*topological batching*), optional signal-probability labels and the
//!   reconvergence skip edges with their positional encodings.
//! - [`Aggregator`] — the four aggregation functions of the paper, built on
//!   the gather / scatter-add / segment-softmax ops of `deepgate-nn`.
//! - [`Gcn`], [`DagConvGnn`], [`DagRecGnn`] — the baseline models, all
//!   implementing [`ProbabilityModel`] so the trainer and the benchmark
//!   harness treat every model uniformly.
//!
//! The DeepGate model itself (attention + skip connections + fixed gate-type
//! input) lives in `deepgate-core` and reuses the same building blocks.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregator;
mod csr;
mod dag_conv;
mod dag_rec;
mod error;
mod gcn;
mod graph;
mod metrics;
mod model;

pub use aggregator::{Aggregator, AggregatorKind};
pub use csr::{CompiledKernel, InferencePlan, QuantMode};
pub use dag_conv::{DagConvConfig, DagConvGnn};
pub use dag_rec::{DagRecConfig, DagRecGnn, ReferencePlan};
pub use error::GnnError;
pub use gcn::{Gcn, GcnConfig};
pub use graph::{CircuitGraph, FeatureEncoding, LevelBatch, SkipEdge, StructuralHasher};
pub use metrics::GnnMetrics;
pub use model::{evaluate_prediction_error, masked_l1_loss, ProbabilityModel};
