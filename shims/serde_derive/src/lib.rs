//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate re-implements the small subset of `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` the workspace actually uses:
//!
//! - structs with named fields (including private fields),
//! - tuple structs (newtype and general),
//! - enums with unit variants only,
//! - the `#[serde(skip)]` and `#[serde(skip, default = "path")]` field
//!   attributes.
//!
//! Generics, lifetimes, data-carrying enum variants and the rest of serde's
//! attribute language are intentionally unsupported and fail loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: Option<String>,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<String>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated code parses")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated code parses")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Enum(parse_unit_variants(g.stream())),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive supports struct/enum, got `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1; // '#'
        if matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *pos += 1;
        }
        *pos += 1; // the [...] group
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1; // pub(crate) / pub(super)
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Parses a `#[serde(...)]` attribute group into (skip, default) flags.
fn parse_serde_attr(group: &proc_macro::Group) -> (bool, Option<String>) {
    let mut skip = false;
    let mut default = None;
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    // The group is `[serde(...)]`; find the inner parenthesised list.
    let mut args: Vec<TokenTree> = Vec::new();
    let mut is_serde = false;
    for tok in &inner {
        match tok {
            TokenTree::Ident(i) if i.to_string() == "serde" => is_serde = true,
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && is_serde => {
                args = g.stream().into_iter().collect();
            }
            _ => {}
        }
    }
    if !is_serde {
        return (false, None);
    }
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => skip = true,
            TokenTree::Ident(id) if id.to_string() == "default" => {
                // default = "path"
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (args.get(i + 1), args.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let raw = lit.to_string();
                        default = Some(raw.trim_matches('"').to_string());
                        i += 2;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    (skip, default)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        // Field attributes (possibly several, possibly #[serde(...)]).
        let mut skip = false;
        let mut default = None;
        while matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                let (s, d) = parse_serde_attr(g);
                skip |= s;
                if d.is_some() {
                    default = d;
                }
            }
            pos += 1;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a top-level comma, tracking angle
        // brackets (commas inside `<...>` separate type arguments, commas
        // inside (), [] or {} are hidden inside their Group token).
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Group(_)) => {
                panic!("serde shim derive supports unit enum variants only (variant `{name}`)")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip `= <expr>` up to the comma.
                pos += 1;
                while pos < tokens.len()
                    && !matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    pos += 1;
                }
                pos += 1;
            }
            other => panic!("unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(name);
    }
    variants
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = String::from("let mut __m = ::std::collections::BTreeMap::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "::serde::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn serialize(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = Vec::new();
            for f in fields {
                if f.skip {
                    match &f.default {
                        Some(path) => inits.push(format!("{}: {path}()", f.name)),
                        None => {
                            inits.push(format!("{}: ::std::default::Default::default()", f.name))
                        }
                    }
                } else {
                    inits.push(format!("{0}: ::serde::__field(__obj, \"{0}\")?", f.name));
                }
            }
            format!(
                "let __obj = match __v {{ ::serde::Value::Object(m) => m, _ => return Err(::serde::DeError::custom(\"expected object for {name}\")) }};\nOk({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = match __v {{ ::serde::Value::Array(a) if a.len() == {n} => a, _ => return Err(::serde::DeError::custom(\"expected {n}-element array for {name}\")) }};\nOk({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "let __s = match __v {{ ::serde::Value::Str(s) => s.as_str(), _ => return Err(::serde::DeError::custom(\"expected string for {name}\")) }};\nmatch __s {{ {}, other => Err(::serde::DeError::custom(&format!(\"unknown {name} variant `{{other}}`\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n {body}\n }}\n}}\n"
    )
}
