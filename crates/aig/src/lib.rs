//! And-Inverter Graphs and the logic-synthesis substrate of the DeepGate
//! reproduction.
//!
//! The DeepGate paper normalises every circuit into the And-Inverter Graph
//! (AIG) format using the ABC logic-synthesis tool before learning. This
//! crate is the from-scratch substitute for that step:
//!
//! - [`Aig`] — an AIG with complemented edges ([`AigLit`]), structural
//!   hashing and constant folding on construction.
//! - [`Aig::from_netlist`] — maps an arbitrary gate-level
//!   [`Netlist`](deepgate_netlist::Netlist) (AND/OR/XOR/NAND/NOR/MUX/…)
//!   into AIG form, the equivalent of ABC's `strash`.
//! - [`opt`] — light optimisation passes (dead-node sweeping, AND-tree
//!   balancing, constant propagation) that inject the structural inductive
//!   bias the paper attributes to logic synthesis.
//! - [`recon`] — reconvergence analysis: for every node, the closest
//!   fan-out stem through which two of its input cones reconverge, plus the
//!   logic-level distance. These records drive DeepGate's skip connections.
//! - [`extract`] — sub-circuit (cone) extraction in a target size range,
//!   used to build the training dataset of Table I.
//! - [`aiger`] — the full AIGER subsystem: binary (`aig`) and ASCII (`aag`)
//!   readers and writers, latch-aware, with the [`LatchPolicy`] ingestion
//!   modes (cut latch boundaries or unroll time frames).
//! - [`io`] — the combinational-only AIGER-ASCII convenience wrappers and
//!   conversion back to an explicit PI/AND/NOT netlist for the learning
//!   front-end.
//!
//! # Example
//!
//! ```rust
//! use deepgate_netlist::{GateKind, Netlist};
//! use deepgate_aig::Aig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut n = Netlist::new("xor");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let y = n.add_gate(GateKind::Xor, &[a, b])?;
//! n.mark_output(y, "y");
//!
//! let aig = Aig::from_netlist(&n)?;
//! // XOR maps to three AND nodes: (a·¬b) + (¬a·b) = ¬(¬(a·¬b)·¬(¬a·b)).
//! assert_eq!(aig.num_ands(), 3);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig;
pub mod aiger;
mod error;
pub mod extract;
pub mod io;
mod lit;
pub mod opt;
pub mod recon;

pub use aig::{Aig, AigLatch, AigNode, AigNodeKind, AigStats};
pub use aiger::{AigerError, LatchPolicy};
pub use error::AigError;
pub use lit::AigLit;
pub use recon::{ReconvergenceAnalysis, ReconvergenceConfig, ReconvergenceInfo};
