//! The learning representation of a circuit: node features, level-batched
//! edge lists, labels and reconvergence skip edges.

use crate::GnnError;
use deepgate_aig::recon::{positional_encoding, ReconvergenceAnalysis, ReconvergenceConfig};
use deepgate_aig::{Aig, LatchPolicy};
use deepgate_netlist::{GateKind, Netlist};
use deepgate_nn::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How gate types are encoded as node feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureEncoding {
    /// Three-symbol alphabet of the AIG representation: primary input /
    /// constant, AND gate, NOT gate. This is the encoding DeepGate uses
    /// after circuit transformation.
    AigGates,
    /// One-hot over the full [`GateKind`] alphabet, used for the "without
    /// circuit transformation" ablation of Table IV.
    AllGates,
}

impl FeatureEncoding {
    /// Dimensionality of the node feature vectors under this encoding.
    pub fn dimension(self) -> usize {
        match self {
            FeatureEncoding::AigGates => 3,
            FeatureEncoding::AllGates => GateKind::ALL.len(),
        }
    }

    /// Feature index of a gate kind under this encoding.
    ///
    /// # Panics
    ///
    /// Panics for [`FeatureEncoding::AigGates`] if the kind is not part of
    /// the PI/AND/NOT alphabet (e.g. an OR gate in a netlist that was not
    /// transformed to AIG form).
    pub fn index_of(self, kind: GateKind) -> usize {
        match self {
            FeatureEncoding::AigGates => match kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
                GateKind::And => 1,
                GateKind::Not => 2,
                other => panic!("gate kind {other} is not part of the AIG alphabet"),
            },
            FeatureEncoding::AllGates => kind.one_hot_index(),
        }
    }
}

/// A skip-connection edge from a fan-out stem to a reconvergence node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkipEdge {
    /// Node index of the source fan-out stem.
    pub source: usize,
    /// Node index of the reconvergence node.
    pub target: usize,
    /// Logic-level difference between the two.
    pub level_difference: usize,
}

/// The edges entering the nodes of one logic level, flattened for batched
/// gather / scatter operations (the *topological batching* of Thost & Chen).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelBatch {
    /// The logic level of the target nodes.
    pub level: usize,
    /// Target node indices updated in this batch.
    pub targets: Vec<usize>,
    /// Source node index of every incoming edge.
    pub edge_src: Vec<usize>,
    /// For every edge, the position of its target inside `targets` (the
    /// segment id used for scatter-add and segment-softmax).
    pub edge_seg: Vec<usize>,
}

/// A circuit prepared for GNN consumption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitGraph {
    /// Design name.
    pub name: String,
    /// Number of nodes.
    pub num_nodes: usize,
    /// The feature encoding in use.
    pub encoding: FeatureEncoding,
    /// `[num_nodes, encoding.dimension()]` one-hot gate-type features.
    pub features: Tensor,
    /// Per-node logic level.
    pub levels: Vec<usize>,
    /// Maximum logic level (circuit depth).
    pub max_level: usize,
    /// `true` for nodes that are logic gates (not primary inputs or
    /// constants); evaluation metrics are computed over these nodes.
    pub gate_mask: Vec<bool>,
    /// Directed edges `(fanin, node)` of the circuit DAG.
    pub edges: Vec<(usize, usize)>,
    /// Forward level batches in ascending level order (level ≥ 1).
    pub forward_batches: Vec<LevelBatch>,
    /// Reverse level batches in descending level order; targets receive
    /// messages from their fan-outs.
    pub reverse_batches: Vec<LevelBatch>,
    /// Skip edges from reconvergence analysis.
    pub skip_edges: Vec<SkipEdge>,
    /// Per-node skip edge indexed by target node (at most one per node).
    skip_by_target: Vec<Option<SkipEdge>>,
    /// Optional per-node signal-probability labels.
    pub labels: Option<Vec<f32>>,
}

impl CircuitGraph {
    /// Builds a circuit graph from a gate-level netlist.
    ///
    /// `labels`, when given, must hold one signal probability per netlist
    /// node (indexed by [`deepgate_netlist::NodeId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `encoding` is [`FeatureEncoding::AigGates`] and the netlist
    /// contains gates outside the PI/AND/NOT alphabet, or if `labels` has the
    /// wrong length.
    pub fn from_netlist(
        netlist: &Netlist,
        encoding: FeatureEncoding,
        labels: Option<Vec<f32>>,
    ) -> Self {
        let n = netlist.len();
        if let Some(l) = &labels {
            assert_eq!(l.len(), n, "labels must cover every netlist node");
        }
        let mut features = Tensor::zeros(n, encoding.dimension());
        let mut gate_mask = vec![false; n];
        for (id, node) in netlist.iter() {
            features.set(id.index(), encoding.index_of(node.kind), 1.0);
            gate_mask[id.index()] = node.kind.is_gate();
        }
        let level_info = netlist.levels();
        let levels = level_info.level.clone();
        let max_level = level_info.max_level;

        let mut edges = Vec::new();
        for (id, node) in netlist.iter() {
            for f in &node.fanins {
                edges.push((f.index(), id.index()));
            }
        }

        let forward_batches = build_forward_batches(netlist, &levels, max_level);
        let reverse_batches = build_reverse_batches(netlist, &levels, max_level);

        let recon = ReconvergenceAnalysis::of_netlist(netlist, ReconvergenceConfig::default());
        let mut skip_edges = Vec::new();
        let mut skip_by_target = vec![None; n];
        for (target, info) in recon.per_node().iter().enumerate() {
            if let Some(info) = info {
                let edge = SkipEdge {
                    source: info.source,
                    target,
                    level_difference: info.level_difference,
                };
                skip_edges.push(edge);
                skip_by_target[target] = Some(edge);
            }
        }

        CircuitGraph {
            name: netlist.name().to_string(),
            num_nodes: n,
            encoding,
            features,
            levels,
            max_level,
            gate_mask,
            edges,
            forward_batches,
            reverse_batches,
            skip_edges,
            skip_by_target,
            labels,
        }
    }

    /// Builds a circuit graph from an AIG by expanding it into an explicit
    /// PI/AND/NOT netlist first. Returns the graph together with the
    /// expanded netlist (which is what labels must be computed against).
    ///
    /// Sequential AIGs are implicitly cut at latch boundaries (latch state
    /// nodes become pseudo primary inputs); use
    /// [`CircuitGraph::from_sequential_aig`] to choose the latch treatment
    /// explicitly and keep next-state cones observable.
    pub fn from_aig(aig: &Aig) -> (Self, Netlist) {
        let netlist = aig.to_netlist();
        let graph = CircuitGraph::from_netlist(&netlist, FeatureEncoding::AigGates, None);
        (graph, netlist)
    }

    /// Builds a circuit graph from a (possibly sequential) AIG after
    /// applying a [`LatchPolicy`]: cut latch boundaries into pseudo-PI/PO,
    /// or unroll a fixed number of time frames. Returns the graph with the
    /// expanded combinational netlist, like [`CircuitGraph::from_aig`].
    ///
    /// # Errors
    ///
    /// Returns [`deepgate_aig::AigError`] if the policy cannot be applied
    /// (e.g. unrolling zero frames).
    pub fn from_sequential_aig(
        aig: &Aig,
        policy: LatchPolicy,
    ) -> Result<(Self, Netlist), deepgate_aig::AigError> {
        let combinational = policy.apply(aig)?;
        Ok(CircuitGraph::from_aig(&combinational))
    }

    /// Attaches per-node labels (signal probabilities).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the node count.
    pub fn set_labels(&mut self, labels: Vec<f32>) {
        assert_eq!(labels.len(), self.num_nodes, "label count mismatch");
        self.labels = Some(labels);
    }

    /// The skip edge ending at `target`, if that node is a reconvergence
    /// node.
    pub fn skip_edge_for(&self, target: usize) -> Option<SkipEdge> {
        self.skip_by_target.get(target).copied().flatten()
    }

    /// Number of logic-gate nodes (excludes primary inputs and constants).
    pub fn num_gates(&self) -> usize {
        self.gate_mask.iter().filter(|&&g| g).count()
    }

    /// The positional encoding γ(D) of a skip edge's level difference
    /// (Eq. 7), with `l` frequency pairs.
    pub fn skip_edge_encoding(edge: SkipEdge, l: usize) -> Vec<f32> {
        positional_encoding(edge.level_difference, l)
    }

    /// Labels as a `[num_nodes, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if no labels are attached.
    pub fn label_tensor(&self) -> Tensor {
        let labels = self
            .labels
            .as_ref()
            .expect("circuit graph has no labels attached");
        Tensor::column(labels)
    }

    /// A canonical 128-bit structural fingerprint of the circuit.
    ///
    /// The fingerprint covers everything inference depends on — feature
    /// encoding, per-node features, logic levels, gate mask, edges and skip
    /// edges — and deliberately excludes the design name and labels, so two
    /// separately parsed copies of the same circuit collide on purpose. This
    /// is the cache key of the serving layer's structural circuit cache
    /// (`deepgate-serve`): repeated circuits skip preparation entirely.
    pub fn fingerprint(&self) -> u128 {
        let mut h = StructuralHasher::new();
        h.write(self.encoding.dimension() as u64);
        h.write(self.num_nodes as u64);
        h.write(self.max_level as u64);
        for &v in self.features.as_slice() {
            h.write(v.to_bits() as u64);
        }
        for &level in &self.levels {
            h.write(level as u64);
        }
        for &gate in &self.gate_mask {
            h.write(gate as u64);
        }
        h.write(self.edges.len() as u64);
        for &(src, dst) in &self.edges {
            h.write(src as u64);
            h.write(dst as u64);
        }
        h.write(self.skip_edges.len() as u64);
        for edge in &self.skip_edges {
            h.write(edge.source as u64);
            h.write(edge.target as u64);
            h.write(edge.level_difference as u64);
        }
        h.finish()
    }

    /// Merges circuits into one disjoint-union graph, returning it together
    /// with each circuit's node offset inside the union.
    ///
    /// Nodes keep their absolute logic levels, and level batches of the same
    /// level are merged across circuits, so one GNN pass over the union
    /// computes exactly the per-node results of running each circuit
    /// individually — but with `max(levels)` batched tensor dispatches
    /// instead of `sum(levels)`. This is what makes batched inference pay
    /// even on a single core; see `deepgate::InferenceSession`.
    ///
    /// Labels are merged when every member is labelled, dropped otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::EncodingMismatch`] if the circuits do not share
    /// one feature encoding.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty.
    pub fn disjoint_union(
        graphs: &[&CircuitGraph],
    ) -> Result<(CircuitGraph, Vec<usize>), GnnError> {
        assert!(!graphs.is_empty(), "cannot union zero circuits");
        let encoding = graphs[0].encoding;
        for g in graphs {
            if g.encoding != encoding {
                return Err(GnnError::EncodingMismatch {
                    expected: encoding.dimension(),
                    got: g.encoding.dimension(),
                });
            }
        }

        let total_nodes: usize = graphs.iter().map(|g| g.num_nodes).sum();
        let mut offsets = Vec::with_capacity(graphs.len());
        let mut features_data = Vec::with_capacity(total_nodes * encoding.dimension());
        let mut levels = Vec::with_capacity(total_nodes);
        let mut gate_mask = Vec::with_capacity(total_nodes);
        let mut edges = Vec::new();
        let mut skip_edges = Vec::new();
        let mut skip_by_target = Vec::with_capacity(total_nodes);
        let all_labelled = graphs.iter().all(|g| g.labels.is_some());
        let mut labels = all_labelled.then(|| Vec::with_capacity(total_nodes));
        // Level-keyed accumulation merges same-level batches across circuits.
        let mut forward: BTreeMap<usize, LevelBatch> = BTreeMap::new();
        let mut reverse: BTreeMap<usize, LevelBatch> = BTreeMap::new();

        let mut offset = 0usize;
        for g in graphs {
            offsets.push(offset);
            features_data.extend_from_slice(g.features.as_slice());
            levels.extend_from_slice(&g.levels);
            gate_mask.extend_from_slice(&g.gate_mask);
            edges.extend(g.edges.iter().map(|&(s, d)| (s + offset, d + offset)));
            for edge in &g.skip_edges {
                skip_edges.push(SkipEdge {
                    source: edge.source + offset,
                    target: edge.target + offset,
                    level_difference: edge.level_difference,
                });
            }
            skip_by_target.extend(g.skip_by_target.iter().map(|s| {
                s.map(|edge| SkipEdge {
                    source: edge.source + offset,
                    target: edge.target + offset,
                    level_difference: edge.level_difference,
                })
            }));
            if let (Some(out), Some(l)) = (labels.as_mut(), g.labels.as_ref()) {
                out.extend_from_slice(l);
            }
            for (map, batches) in [
                (&mut forward, &g.forward_batches),
                (&mut reverse, &g.reverse_batches),
            ] {
                for batch in batches {
                    let merged = map.entry(batch.level).or_insert_with(|| LevelBatch {
                        level: batch.level,
                        targets: Vec::new(),
                        edge_src: Vec::new(),
                        edge_seg: Vec::new(),
                    });
                    let seg_base = merged.targets.len();
                    merged
                        .targets
                        .extend(batch.targets.iter().map(|&t| t + offset));
                    merged
                        .edge_src
                        .extend(batch.edge_src.iter().map(|&s| s + offset));
                    merged
                        .edge_seg
                        .extend(batch.edge_seg.iter().map(|&s| s + seg_base));
                }
            }
            offset += g.num_nodes;
        }

        let max_level = graphs.iter().map(|g| g.max_level).max().unwrap_or(0);
        Ok((
            CircuitGraph {
                name: format!("batch[{}]", graphs.len()),
                num_nodes: total_nodes,
                encoding,
                features: Tensor::from_vec(total_nodes, encoding.dimension(), features_data),
                levels,
                max_level,
                gate_mask,
                edges,
                // Forward: ascending level; reverse: descending level. Both
                // respect every member circuit's own topological order.
                forward_batches: forward.into_values().collect(),
                reverse_batches: reverse.into_values().rev().collect(),
                skip_edges,
                skip_by_target,
                labels,
            },
            offsets,
        ))
    }
}

/// Two interleaved FNV-1a streams with distinct offsets, combined into a
/// 128-bit digest. Not cryptographic — collision resistance only needs to be
/// good enough for cache keying, where a collision costs a wrong prediction
/// for one request, and 2^-128 is far below hardware error rates.
///
/// Shared by [`CircuitGraph::fingerprint`] and the serving layer's
/// request-text memo (`deepgate-serve`), so both keys evolve together.
#[derive(Debug, Clone)]
pub struct StructuralHasher {
    a: u64,
    b: u64,
}

impl StructuralHasher {
    const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
    const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        StructuralHasher {
            a: Self::OFFSET_A,
            b: Self::OFFSET_B,
        }
    }

    /// Mixes in one `u64` (little-endian byte order).
    pub fn write(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Mixes in raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(Self::PRIME);
            self.b = (self.b ^ byte.rotate_left(3) as u64).wrapping_mul(Self::PRIME);
        }
    }

    /// The 128-bit digest of everything written so far.
    pub fn finish(&self) -> u128 {
        ((self.a as u128) << 64) | self.b as u128
    }
}

impl Default for StructuralHasher {
    fn default() -> Self {
        StructuralHasher::new()
    }
}

fn build_forward_batches(netlist: &Netlist, levels: &[usize], max_level: usize) -> Vec<LevelBatch> {
    let mut batches = Vec::new();
    for level in 1..=max_level {
        let mut targets = Vec::new();
        let mut edge_src = Vec::new();
        let mut edge_seg = Vec::new();
        for (id, node) in netlist.iter() {
            if levels[id.index()] != level || node.fanins.is_empty() {
                continue;
            }
            let seg = targets.len();
            targets.push(id.index());
            for f in &node.fanins {
                edge_src.push(f.index());
                edge_seg.push(seg);
            }
        }
        if !targets.is_empty() {
            batches.push(LevelBatch {
                level,
                targets,
                edge_src,
                edge_seg,
            });
        }
    }
    batches
}

fn build_reverse_batches(netlist: &Netlist, levels: &[usize], max_level: usize) -> Vec<LevelBatch> {
    // Forward adjacency: fanouts of every node.
    let mut fanouts: Vec<Vec<usize>> = vec![Vec::new(); netlist.len()];
    for (id, node) in netlist.iter() {
        for f in &node.fanins {
            fanouts[f.index()].push(id.index());
        }
    }
    let mut batches = Vec::new();
    // Descending level order: a node's fan-outs sit at strictly higher levels
    // and therefore have already been updated when the node is processed.
    for level in (0..max_level).rev() {
        let mut targets = Vec::new();
        let mut edge_src = Vec::new();
        let mut edge_seg = Vec::new();
        for (id, _) in netlist.iter() {
            let idx = id.index();
            if levels[idx] != level || fanouts[idx].is_empty() {
                continue;
            }
            let seg = targets.len();
            targets.push(idx);
            for &s in &fanouts[idx] {
                edge_src.push(s);
                edge_seg.push(seg);
            }
        }
        if !targets.is_empty() {
            batches.push(LevelBatch {
                level,
                targets,
                edge_src,
                edge_seg,
            });
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate_netlist::GateKind;

    fn small_netlist() -> Netlist {
        let mut n = Netlist::new("g");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = n.add_gate(GateKind::And, &[g1, g2]).unwrap();
        n.mark_output(g3, "y");
        n
    }

    #[test]
    fn features_are_one_hot() {
        let n = small_netlist();
        let graph = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        assert_eq!(graph.features.shape(), [5, 3]);
        for i in 0..graph.num_nodes {
            let row_sum: f32 = graph.features.row(i).iter().sum();
            assert_eq!(row_sum, 1.0);
        }
        // PI rows have feature 0 set; AND rows feature 1; NOT rows feature 2.
        assert_eq!(graph.features.get(0, 0), 1.0);
        assert_eq!(graph.features.get(2, 1), 1.0);
        assert_eq!(graph.features.get(3, 2), 1.0);
        assert_eq!(graph.num_gates(), 3);
    }

    #[test]
    fn all_gates_encoding_has_full_dimension() {
        let n = small_netlist();
        let graph = CircuitGraph::from_netlist(&n, FeatureEncoding::AllGates, None);
        assert_eq!(graph.features.cols(), GateKind::ALL.len());
    }

    #[test]
    fn disjoint_union_merges_structure_and_levels() {
        let a = CircuitGraph::from_netlist(&small_netlist(), FeatureEncoding::AigGates, None);
        let mut deeper = Netlist::new("d");
        let x = deeper.add_input("x");
        let g1 = deeper.add_gate(GateKind::Not, &[x]).unwrap();
        let g2 = deeper.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = deeper.add_gate(GateKind::Not, &[g2]).unwrap();
        let g4 = deeper.add_gate(GateKind::Not, &[g3]).unwrap();
        deeper.mark_output(g4, "y");
        let b = CircuitGraph::from_netlist(&deeper, FeatureEncoding::AigGates, None);

        let (union, offsets) = CircuitGraph::disjoint_union(&[&a, &b]).unwrap();
        assert_eq!(offsets, vec![0, a.num_nodes]);
        assert_eq!(union.num_nodes, a.num_nodes + b.num_nodes);
        assert_eq!(union.max_level, a.max_level.max(b.max_level));
        assert_eq!(union.num_gates(), a.num_gates() + b.num_gates());
        assert_eq!(union.edges.len(), a.edges.len() + b.edges.len());
        // Same-level batches merge: batch count equals max depth, not sum.
        assert_eq!(union.forward_batches.len(), union.max_level);
        // Every union edge still goes forward in level.
        for &(src, dst) in &union.edges {
            assert!(union.levels[src] < union.levels[dst]);
        }
        // Forward batches cover every gate of both circuits exactly once.
        let covered: usize = union.forward_batches.iter().map(|b| b.targets.len()).sum();
        assert_eq!(covered, union.num_gates());
        // Reverse batches are in strictly descending level order.
        for pair in union.reverse_batches.windows(2) {
            assert!(pair[0].level > pair[1].level);
        }
    }

    #[test]
    fn disjoint_union_merges_labels_only_when_all_present() {
        let mut a = CircuitGraph::from_netlist(&small_netlist(), FeatureEncoding::AigGates, None);
        let b = CircuitGraph::from_netlist(&small_netlist(), FeatureEncoding::AigGates, None);
        a.set_labels(vec![0.5; a.num_nodes]);
        let (union, _) = CircuitGraph::disjoint_union(&[&a, &b]).unwrap();
        assert!(union.labels.is_none());
        let mut b = b;
        b.set_labels(vec![0.25; b.num_nodes]);
        let (union, offsets) = CircuitGraph::disjoint_union(&[&a, &b]).unwrap();
        let labels = union.labels.unwrap();
        assert_eq!(labels[0], 0.5);
        assert_eq!(labels[offsets[1]], 0.25);
    }

    #[test]
    fn disjoint_union_rejects_mixed_encodings() {
        let a = CircuitGraph::from_netlist(&small_netlist(), FeatureEncoding::AigGates, None);
        let b = CircuitGraph::from_netlist(&small_netlist(), FeatureEncoding::AllGates, None);
        assert!(matches!(
            CircuitGraph::disjoint_union(&[&a, &b]),
            Err(GnnError::EncodingMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "not part of the AIG alphabet")]
    fn aig_encoding_rejects_foreign_gates() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let _ = n.add_gate(GateKind::Or, &[a, b]).unwrap();
        let _ = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
    }

    #[test]
    fn forward_batches_cover_all_gates_once() {
        let n = small_netlist();
        let graph = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        let covered: usize = graph.forward_batches.iter().map(|b| b.targets.len()).sum();
        assert_eq!(covered, graph.num_gates());
        // Batch levels are strictly ascending and edges reference earlier
        // levels only.
        let mut prev_level = 0;
        for batch in &graph.forward_batches {
            assert!(batch.level > prev_level);
            prev_level = batch.level;
            assert_eq!(batch.edge_src.len(), batch.edge_seg.len());
            for (&src, &seg) in batch.edge_src.iter().zip(&batch.edge_seg) {
                assert!(graph.levels[src] < batch.level);
                assert!(seg < batch.targets.len());
            }
        }
    }

    #[test]
    fn reverse_batches_point_to_successors() {
        let n = small_netlist();
        let graph = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        // Reverse batches are in descending level order and sources are at
        // strictly higher levels.
        let mut prev = usize::MAX;
        for batch in &graph.reverse_batches {
            assert!(batch.level < prev);
            prev = batch.level;
            for &src in &batch.edge_src {
                assert!(graph.levels[src] > batch.level);
            }
        }
        // Every node with at least one fan-out appears exactly once.
        let covered: usize = graph.reverse_batches.iter().map(|b| b.targets.len()).sum();
        assert_eq!(covered, 4); // a, b, g1, g2 have fan-outs; g3 does not.
    }

    #[test]
    fn skip_edges_found_for_reconvergent_netlist() {
        let n = small_netlist();
        let graph = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        // g3 reconverges on g1 (through the direct edge and through g2).
        assert_eq!(graph.skip_edges.len(), 1);
        let edge = graph.skip_edges[0];
        assert_eq!(edge.source, 2);
        assert_eq!(edge.target, 4);
        assert_eq!(graph.skip_edge_for(4), Some(edge));
        assert_eq!(graph.skip_edge_for(1), None);
        let enc = CircuitGraph::skip_edge_encoding(edge, 8);
        assert_eq!(enc.len(), 16);
    }

    #[test]
    fn fingerprint_is_structural() {
        // Same structure, different names/labels: identical fingerprints.
        let mut a = CircuitGraph::from_netlist(&small_netlist(), FeatureEncoding::AigGates, None);
        let mut renamed = small_netlist();
        renamed.set_name("other");
        let mut b = CircuitGraph::from_netlist(&renamed, FeatureEncoding::AigGates, None);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.set_labels(vec![0.5; a.num_nodes]);
        b.set_labels(vec![0.25; b.num_nodes]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_separates_different_structures() {
        let base = CircuitGraph::from_netlist(&small_netlist(), FeatureEncoding::AigGates, None);
        // Different encoding of the same netlist.
        let wide = CircuitGraph::from_netlist(&small_netlist(), FeatureEncoding::AllGates, None);
        assert_ne!(base.fingerprint(), wide.fingerprint());
        // One extra gate.
        let mut bigger = small_netlist();
        let a = bigger.find_by_name("a").expect("input `a` exists");
        let extra = bigger.add_gate(GateKind::Not, &[a]).unwrap();
        bigger.mark_output(extra, "z");
        let bigger = CircuitGraph::from_netlist(&bigger, FeatureEncoding::AigGates, None);
        assert_ne!(base.fingerprint(), bigger.fingerprint());
        // A union of two copies differs from a single copy.
        let (union, _) = CircuitGraph::disjoint_union(&[&base, &base]).unwrap();
        assert_ne!(base.fingerprint(), union.fingerprint());
    }

    #[test]
    fn labels_roundtrip() {
        let n = small_netlist();
        let mut graph = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        graph.set_labels(vec![0.5, 0.5, 0.25, 0.75, 0.1875]);
        let t = graph.label_tensor();
        assert_eq!(t.shape(), [5, 1]);
        assert_eq!(t.get(2, 0), 0.25);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn wrong_label_count_panics() {
        let n = small_netlist();
        let mut graph = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        graph.set_labels(vec![0.1]);
    }

    #[test]
    fn from_aig_expands_and_builds() {
        let mut aig = Aig::new("x");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output(x, "y");
        let (graph, netlist) = CircuitGraph::from_aig(&aig);
        assert_eq!(graph.num_nodes, netlist.len());
        assert_eq!(graph.encoding, FeatureEncoding::AigGates);
        assert!(graph.num_gates() > 0);
    }

    /// A toggle flip-flop (`q' = q XOR en`, output `q`) under both latch
    /// policies: distinct structures, distinct fingerprints.
    #[test]
    fn from_sequential_aig_applies_policies() {
        let mut aig = Aig::new("toggle");
        let en = aig.add_input("en");
        let q = aig.add_latch("q");
        let next = aig.xor(q, en);
        aig.set_latch_next(0, next);
        aig.add_output(q, "y");

        let (cut, cut_netlist) =
            CircuitGraph::from_sequential_aig(&aig, LatchPolicy::Cut).expect("cut policy applies");
        assert_eq!(cut_netlist.num_inputs(), 2); // en + pseudo-input q
        assert_eq!(cut_netlist.num_outputs(), 2); // y + q_next

        let (unrolled, unrolled_netlist) =
            CircuitGraph::from_sequential_aig(&aig, LatchPolicy::Unroll(3))
                .expect("unroll policy applies");
        assert_eq!(unrolled_netlist.num_outputs(), 3); // y@0..y@2
        assert_ne!(cut.fingerprint(), unrolled.fingerprint());

        assert!(CircuitGraph::from_sequential_aig(&aig, LatchPolicy::Unroll(0)).is_err());
    }
}
