//! The event loop's platform layer: readiness polling behind the
//! [`Poller`] trait (`epoll` on Linux, portable `poll(2)` everywhere
//! else), a cross-thread [`Waker`] the scheduler's workers use to hand
//! completions back to the loop, and the [`TimerWheel`] that drives the
//! connection-hygiene deadlines (idle / line / write) without one blocking
//! read per connection.
//!
//! Both backends expose **level-triggered** semantics: a registered fd with
//! unread input (or writable space) reports readiness on every `wait` until
//! the condition is consumed, so the loop never needs to drain a socket to
//! exhaustion inside one event.

use std::io;
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw bindings to the readiness syscalls. `std` already links libc, so
/// these symbols resolve without any external crate. This module is the
/// only place in the crate allowed to contain unsafe code, and every
/// wrapper is a thin argument-marshalling shim: no pointer arithmetic
/// beyond passing the caller's own buffers.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// `poll(2)` over the caller's pollfd slice. `EINTR` surfaces as
    /// `Ok(0)` — a spurious wakeup the event loop already tolerates.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }

    #[cfg(target_os = "linux")]
    pub use epoll::*;

    #[cfg(target_os = "linux")]
    mod epoll {
        use std::io;
        use std::os::raw::c_int;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        const EPOLL_CLOEXEC: c_int = 0x80000;

        /// `struct epoll_event`; packed on x86 per the kernel ABI.
        #[repr(C)]
        #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        pub fn epoll_create() -> io::Result<c_int> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(fd)
        }

        pub fn epoll_control(
            epfd: c_int,
            op: c_int,
            fd: c_int,
            events: u32,
            data: u64,
        ) -> io::Result<()> {
            let mut event = EpollEvent { events, data };
            let rc = unsafe { epoll_ctl(epfd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// `epoll_wait(2)` into the caller's buffer. `EINTR` surfaces as
        /// `Ok(0)` — a spurious wakeup the event loop already tolerates.
        pub fn epoll_wait_events(
            epfd: c_int,
            buf: &mut [EpollEvent],
            timeout_ms: c_int,
        ) -> io::Result<usize> {
            let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(rc as usize)
        }

        pub fn close_fd(fd: c_int) {
            let _ = unsafe { close(fd) };
        }
    }
}

/// Which readiness conditions a registration subscribes to. Hangup and
/// error conditions are always reported regardless of interest, on both
/// backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has input (or a peer hangup) to read.
    pub readable: bool,
    /// Wake when the fd can accept more output.
    pub writable: bool,
}

impl Interest {
    /// Read-side interest only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-side interest only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither direction: only hangup/error conditions wake the loop.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event, translated to backend-independent form.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd has input to read (or a hangup to observe via EOF).
    pub readable: bool,
    /// The fd can accept output.
    pub writable: bool,
    /// The peer hung up or the fd errored; reads/writes will resolve it.
    pub hangup: bool,
}

/// A readiness-notification backend: register fds under tokens, wait for
/// events. Both implementations are level-triggered.
pub trait Poller: Send {
    /// The backend's name, for logs and the CLI startup line.
    fn backend(&self) -> &'static str;
    /// Subscribes `fd` under `token`. Registering an fd twice is an error.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Replaces the interest set of an already-registered fd.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Removes `fd` from the set; it stops producing events immediately.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Blocks until at least one event, the timeout, or a (tolerated)
    /// spurious wakeup; `events` is cleared and refilled. `None` blocks
    /// indefinitely.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
}

/// Converts a timeout to whole milliseconds, rounding up so sub-tick
/// timeouts cannot busy-spin, saturating into the `c_int` range.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
    }
}

/// The Linux backend: one `epoll` instance, level-triggered.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<EpollPoller> {
        Ok(EpollPoller {
            epfd: sys::epoll_create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        })
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut mask = 0;
    if interest.readable {
        mask |= sys::EPOLLIN;
    }
    if interest.writable {
        mask |= sys::EPOLLOUT;
    }
    mask
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn backend(&self) -> &'static str {
        "epoll"
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            epoll_mask(interest),
            token as u64,
        )
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            epoll_mask(interest),
            token as u64,
        )
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let n = sys::epoll_wait_events(self.epfd, &mut self.buf, timeout_ms(timeout))?;
        for ev in &self.buf[..n] {
            let bits = ev.events;
            let hangup = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            events.push(Event {
                token: ev.data as usize,
                readable: hangup || bits & sys::EPOLLIN != 0,
                writable: hangup || bits & sys::EPOLLOUT != 0,
                hangup,
            });
        }
        Ok(())
    }
}

/// The portable POSIX backend: the registration table is rebuilt into a
/// `pollfd` array on every wait. O(n) per wait, which is fine for the
/// fleet sizes `poll(2)` is the fallback for.
pub struct PollPoller {
    registered: Vec<(RawFd, usize, Interest)>,
}

impl PollPoller {
    /// Creates an empty registration table.
    pub fn new() -> PollPoller {
        PollPoller {
            registered: Vec::new(),
        }
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.registered.iter().position(|&(f, _, _)| f == fd)
    }
}

impl Default for PollPoller {
    fn default() -> Self {
        PollPoller::new()
    }
}

impl Poller for PollPoller {
    fn backend(&self) -> &'static str {
        "poll"
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.registered.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let Some(at) = self.position(fd) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        };
        self.registered[at] = (fd, token, interest);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let Some(at) = self.position(fd) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        };
        self.registered.swap_remove(at);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let mut fds: Vec<sys::PollFd> = self
            .registered
            .iter()
            .map(|&(fd, _, interest)| {
                let mut mask = 0i16;
                if interest.readable {
                    mask |= sys::POLLIN;
                }
                if interest.writable {
                    mask |= sys::POLLOUT;
                }
                sys::PollFd {
                    fd,
                    events: mask,
                    revents: 0,
                }
            })
            .collect();
        let n = sys::poll_fds(&mut fds, timeout_ms(timeout))?;
        if n == 0 {
            return Ok(());
        }
        for (slot, &(_, token, _)) in fds.iter().zip(&self.registered) {
            let bits = slot.revents;
            if bits == 0 {
                continue;
            }
            let hangup = bits & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
            events.push(Event {
                token,
                readable: hangup || bits & sys::POLLIN != 0,
                writable: hangup || bits & sys::POLLOUT != 0,
                hangup,
            });
        }
        Ok(())
    }
}

/// Which readiness backend the server's event loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerKind {
    /// `epoll` where available (Linux), `poll(2)` elsewhere. The default.
    #[default]
    Auto,
    /// Force `epoll`; an error off Linux.
    Epoll,
    /// Force the portable `poll(2)` backend.
    Poll,
}

impl FromStr for PollerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<PollerKind, String> {
        match s {
            "auto" => Ok(PollerKind::Auto),
            "epoll" => Ok(PollerKind::Epoll),
            "poll" => Ok(PollerKind::Poll),
            other => Err(format!(
                "unknown poller `{other}` (expected auto, epoll or poll)"
            )),
        }
    }
}

impl std::fmt::Display for PollerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PollerKind::Auto => "auto",
            PollerKind::Epoll => "epoll",
            PollerKind::Poll => "poll",
        })
    }
}

/// Instantiates the requested backend.
///
/// # Errors
///
/// `epoll` creation can fail (fd exhaustion), and forcing `epoll` on a
/// non-Linux platform reports `Unsupported`.
pub fn create_poller(kind: PollerKind) -> io::Result<Box<dyn Poller>> {
    match kind {
        PollerKind::Poll => Ok(Box::new(PollPoller::new())),
        #[cfg(target_os = "linux")]
        PollerKind::Auto | PollerKind::Epoll => Ok(Box::new(EpollPoller::new()?)),
        #[cfg(not(target_os = "linux"))]
        PollerKind::Auto => Ok(Box::new(PollPoller::new())),
        #[cfg(not(target_os = "linux"))]
        PollerKind::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on Linux",
        )),
    }
}

/// The write half of the loop's wakeup channel: any thread can [`wake`]
/// the event loop out of its `wait`. Built std-only from a connected
/// loopback UDP socket pair; consecutive wakes coalesce through an atomic
/// flag so a burst of completions costs one datagram, not one per job.
///
/// [`wake`]: Waker::wake
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UdpSocket>,
    pending: Arc<AtomicBool>,
}

impl Waker {
    /// Wakes the event loop if it is not already scheduled to wake.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            // A failed send can only mean the socket buffer already holds
            // unread wake datagrams — which is itself a pending wakeup.
            let _ = self.tx.send(&[1]);
        }
    }
}

/// The read half of the wakeup channel, owned by the event loop: register
/// [`fd`] for readability, then [`drain`] on every wake event.
///
/// [`fd`]: WakeReceiver::fd
/// [`drain`]: WakeReceiver::drain
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UdpSocket,
    pending: Arc<AtomicBool>,
}

impl WakeReceiver {
    /// The fd to register (readable) in the poller.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every queued wake datagram and re-arms the coalescing
    /// flag. The loop must check its completion queues *after* draining:
    /// a producer that loses the flag race has already enqueued its work.
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.rx.recv(&mut buf).is_ok() {}
        self.pending.store(false, Ordering::SeqCst);
    }
}

/// Builds a connected wakeup pair.
///
/// # Errors
///
/// Propagates loopback socket creation/connect failures.
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let rx = UdpSocket::bind("127.0.0.1:0")?;
    rx.set_nonblocking(true)?;
    let tx = UdpSocket::bind("127.0.0.1:0")?;
    tx.connect(rx.local_addr()?)?;
    tx.set_nonblocking(true)?;
    let pending = Arc::new(AtomicBool::new(false));
    Ok((
        Waker {
            tx: Arc::new(tx),
            pending: Arc::clone(&pending),
        },
        WakeReceiver { rx, pending },
    ))
}

/// What a connection timer polices; the wheel itself is kind-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// No completed request and no partial line for `idle_timeout`.
    Idle,
    /// A partial request line older than `line_timeout` (slow-loris).
    Line,
    /// A write buffer that has made no progress for `write_timeout`.
    Write,
}

/// One scheduled timer. Timers use **lazy cancellation**: entries are
/// never removed early, so on expiry the owner must validate the entry
/// against current connection state (generation *and* the live deadline)
/// before acting.
#[derive(Debug, Clone, Copy)]
pub struct TimerEntry {
    /// Absolute expiry instant.
    pub deadline: Instant,
    /// The connection's slab token.
    pub token: usize,
    /// The connection's generation at scheduling time; a mismatch means
    /// the slot was reused and the timer is stale.
    pub generation: u64,
    /// Which deadline this timer polices.
    pub kind: TimerKind,
}

/// A hashed timer wheel: slots of `tick` granularity, entries hashed by
/// expiry tick, re-checked against their exact deadline on collection so
/// an entry several wheel rotations out never fires early.
pub struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<TimerEntry>>,
    epoch: Instant,
    /// The next tick index to collect.
    cursor: u64,
    len: usize,
    /// The earliest scheduled deadline, so the event loop's poll timeout
    /// tracks real deadlines instead of waking every tick.
    earliest: Option<Instant>,
}

impl TimerWheel {
    /// A wheel of `slots` buckets at `tick` granularity, anchored at `now`.
    pub fn new(tick: Duration, slots: usize, now: Instant) -> TimerWheel {
        assert!(slots > 0 && tick > Duration::ZERO);
        TimerWheel {
            tick,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            epoch: now,
            cursor: 0,
            len: 0,
            earliest: None,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.epoch);
        (elapsed.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Schedules an entry. Past deadlines land in the next collectable
    /// tick, so they fire on the very next [`advance`].
    ///
    /// [`advance`]: TimerWheel::advance
    pub fn insert(&mut self, entry: TimerEntry) {
        // Round up: an entry must never be collectable before its
        // deadline's tick has fully elapsed.
        let elapsed = entry.deadline.saturating_duration_since(self.epoch);
        let ticks =
            (elapsed.as_nanos().div_ceil(self.tick.as_nanos().max(1)) as u64).max(self.cursor);
        let slot = (ticks % self.slots.len() as u64) as usize;
        self.earliest = Some(match self.earliest {
            Some(earliest) => earliest.min(entry.deadline),
            None => entry.deadline,
        });
        self.slots[slot].push(entry);
        self.len += 1;
    }

    /// Collects every entry whose deadline is at or before `now`, in
    /// deadline order. Entries in visited buckets that belong to a later
    /// wheel rotation are retained in place.
    pub fn advance(&mut self, now: Instant) -> Vec<TimerEntry> {
        let now_tick = self.tick_of(now);
        if now_tick < self.cursor && self.len == 0 {
            return Vec::new();
        }
        let mut expired = Vec::new();
        if now_tick >= self.cursor {
            let slot_count = self.slots.len() as u64;
            let span = (now_tick - self.cursor + 1).min(slot_count);
            for i in 0..span {
                let slot = ((self.cursor + i) % slot_count) as usize;
                let bucket = std::mem::take(&mut self.slots[slot]);
                for entry in bucket {
                    if entry.deadline <= now {
                        expired.push(entry);
                    } else {
                        self.slots[slot].push(entry);
                    }
                }
            }
            self.cursor = now_tick + 1;
        }
        self.len -= expired.len();
        if !expired.is_empty() {
            self.earliest = self.slots.iter().flatten().map(|e| e.deadline).min();
        }
        expired.sort_by_key(|e| e.deadline);
        expired
    }

    /// Entries currently scheduled (including stale ones awaiting lazy
    /// cancellation). Test-facing introspection.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled. Test-facing introspection.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How long the owning loop may sleep before the earliest deadline is
    /// due, floored at one millisecond so an imminent deadline cannot turn
    /// the poll wait into a busy spin. `None` when nothing is scheduled.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let earliest = self.earliest?;
        Some(
            earliest
                .saturating_duration_since(now)
                .max(Duration::from_millis(1)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Box<dyn Poller>> {
        let mut all: Vec<Box<dyn Poller>> = vec![Box::new(PollPoller::new())];
        #[cfg(target_os = "linux")]
        all.push(Box::new(EpollPoller::new().expect("epoll instance")));
        all
    }

    /// A connected localhost TCP pair to generate real readiness with.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connects");
        let (server, _) = listener.accept().expect("accepts");
        client.set_nonblocking(true).expect("nonblocking");
        server.set_nonblocking(true).expect("nonblocking");
        (client, server)
    }

    fn wait_for_token(
        poller: &mut dyn Poller,
        events: &mut Vec<Event>,
        token: usize,
    ) -> Option<Event> {
        // A bounded retry loop: spurious wakeups (EINTR, coalesced waker
        // noise) return zero events and must simply be waited through.
        for _ in 0..50 {
            poller
                .wait(events, Some(Duration::from_millis(100)))
                .expect("wait");
            if let Some(ev) = events.iter().find(|e| e.token == token) {
                return Some(*ev);
            }
            if events.is_empty() {
                continue;
            }
        }
        None
    }

    #[test]
    fn readiness_is_level_triggered_until_consumed() {
        for mut poller in backends() {
            let (mut client, mut server) = tcp_pair();
            poller
                .register(server.as_raw_fd(), 7, Interest::READABLE)
                .expect("register");
            client.write_all(b"ping").expect("writes");
            let ev = wait_for_token(poller.as_mut(), &mut Vec::new(), 7)
                .unwrap_or_else(|| panic!("{}: no readable event", poller.backend()));
            assert!(ev.readable, "{}: readable", poller.backend());
            // Level-triggered: the unread bytes keep reporting readiness.
            let again = wait_for_token(poller.as_mut(), &mut Vec::new(), 7)
                .unwrap_or_else(|| panic!("{}: level-triggering lost the event", poller.backend()));
            assert!(again.readable);
            // Consume the input: readiness must stop.
            let mut buf = [0u8; 16];
            let n = server.read(&mut buf).expect("reads");
            assert_eq!(&buf[..n], b"ping");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .expect("wait");
            assert!(
                events.iter().all(|e| e.token != 7),
                "{}: drained fd still readable",
                poller.backend()
            );
        }
    }

    #[test]
    fn writable_interest_reports_immediately_on_an_open_socket() {
        for mut poller in backends() {
            let (_client, server) = tcp_pair();
            poller
                .register(server.as_raw_fd(), 3, Interest::WRITABLE)
                .expect("register");
            let ev = wait_for_token(poller.as_mut(), &mut Vec::new(), 3)
                .unwrap_or_else(|| panic!("{}: no writable event", poller.backend()));
            assert!(
                ev.writable,
                "{}: fresh socket is writable",
                poller.backend()
            );
        }
    }

    #[test]
    fn registration_lifecycle_is_enforced() {
        for mut poller in backends() {
            let (mut client, server) = tcp_pair();
            let fd = server.as_raw_fd();
            poller
                .register(fd, 1, Interest::READABLE)
                .expect("register");
            assert!(
                poller.register(fd, 2, Interest::READABLE).is_err(),
                "{}: double registration must fail",
                poller.backend()
            );
            // Reregistration changes the interest set in place: with only
            // write interest, pending input no longer produces events.
            poller
                .reregister(fd, 1, Interest::NONE)
                .expect("reregister");
            client.write_all(b"x").expect("writes");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .expect("wait");
            assert!(
                events.iter().all(|e| e.token != 1),
                "{}: interest NONE still produced events",
                poller.backend()
            );
            // Deregistered fds produce nothing, and a second deregister
            // (or a reregister) is an error.
            poller.deregister(fd).expect("deregister");
            client.write_all(b"y").expect("writes");
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .expect("wait");
            assert!(events.iter().all(|e| e.token != 1));
            assert!(poller.deregister(fd).is_err());
            assert!(poller.reregister(fd, 1, Interest::READABLE).is_err());
        }
    }

    #[test]
    fn waker_wakes_coalesces_and_tolerates_spurious_wakeups() {
        for mut poller in backends() {
            let (wake_tx, wake_rx) = waker().expect("waker pair");
            poller
                .register(wake_rx.fd(), 0, Interest::READABLE)
                .expect("register");
            // No wake: the wait times out with zero events, which the
            // caller treats as a spurious wakeup and loops over.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(events.is_empty(), "{}: phantom wake", poller.backend());
            // A burst of wakes from another thread coalesces into (at
            // least one, at most a few) datagrams; one drain clears them.
            let remote = wake_tx.clone();
            let burst = std::thread::spawn(move || {
                for _ in 0..100 {
                    remote.wake();
                }
            });
            let ev = wait_for_token(poller.as_mut(), &mut events, 0)
                .unwrap_or_else(|| panic!("{}: wake lost", poller.backend()));
            assert!(ev.readable);
            burst.join().expect("burst thread");
            wake_rx.drain();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(
                events.is_empty(),
                "{}: drain left stale wake datagrams",
                poller.backend()
            );
            // The channel survives draining: the next wake still arrives.
            wake_tx.wake();
            assert!(wait_for_token(poller.as_mut(), &mut events, 0).is_some());
        }
    }

    #[test]
    fn timer_wheel_fires_in_deadline_order_never_early() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 8, start);
        let at = |ms: u64| start + Duration::from_millis(ms);
        let entry = |ms: u64, token: usize, kind: TimerKind| TimerEntry {
            deadline: at(ms),
            token,
            generation: 1,
            kind,
        };
        // Out-of-order insertion, spanning several wheel rotations (the
        // wheel is 8 slots × 5 ms = one rotation per 40 ms).
        wheel.insert(entry(30, 3, TimerKind::Line));
        wheel.insert(entry(10, 1, TimerKind::Idle));
        wheel.insert(entry(130, 13, TimerKind::Idle)); // 3 rotations out
        wheel.insert(entry(20, 2, TimerKind::Write));
        assert_eq!(wheel.len(), 4);
        // The poll timeout tracks the earliest deadline (10 ms out), not
        // the wheel tick.
        assert_eq!(wheel.next_timeout(start), Some(Duration::from_millis(10)));
        assert_eq!(
            wheel.next_timeout(at(100)),
            Some(Duration::from_millis(1)),
            "overdue deadlines floor at 1 ms instead of busy-spinning"
        );

        assert!(
            wheel.advance(at(9)).is_empty(),
            "nothing expires before its deadline"
        );
        let first = wheel.advance(at(25));
        assert_eq!(
            first.iter().map(|e| e.token).collect::<Vec<_>>(),
            vec![1, 2],
            "expired entries collect in deadline order"
        );
        // The far-future entry shares buckets with near ones but must not
        // ride along on an earlier rotation.
        let second = wheel.advance(at(50));
        assert_eq!(second.iter().map(|e| e.token).collect::<Vec<_>>(), vec![3]);
        assert_eq!(wheel.len(), 1);
        let third = wheel.advance(at(200));
        assert_eq!(third.iter().map(|e| e.token).collect::<Vec<_>>(), vec![13]);
        assert_eq!(third[0].kind, TimerKind::Idle);
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_timeout(at(200)), None);
    }

    #[test]
    fn timer_wheel_expires_past_deadlines_on_the_next_advance() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 4, start);
        // Drive the cursor forward, then insert an entry whose deadline is
        // already behind it: it must fire on the very next advance instead
        // of waiting a full rotation.
        let _ = wheel.advance(start + Duration::from_millis(60));
        wheel.insert(TimerEntry {
            deadline: start + Duration::from_millis(10),
            token: 9,
            generation: 1,
            kind: TimerKind::Write,
        });
        let fired = wheel.advance(start + Duration::from_millis(70));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].token, 9);
    }

    #[test]
    fn poller_kind_parses_and_builds() {
        assert_eq!("auto".parse::<PollerKind>().unwrap(), PollerKind::Auto);
        assert_eq!("epoll".parse::<PollerKind>().unwrap(), PollerKind::Epoll);
        assert_eq!("poll".parse::<PollerKind>().unwrap(), PollerKind::Poll);
        assert!("kqueue".parse::<PollerKind>().is_err());
        assert_eq!(PollerKind::default().to_string(), "auto");
        let poller = create_poller(PollerKind::Poll).expect("portable backend");
        assert_eq!(poller.backend(), "poll");
        #[cfg(target_os = "linux")]
        assert_eq!(
            create_poller(PollerKind::Auto).expect("auto").backend(),
            "epoll"
        );
    }
}
