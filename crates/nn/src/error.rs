use std::fmt;

/// Errors produced when loading or saving model parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A parameter present in the checkpoint is missing from the store (or
    /// vice versa).
    MissingParameter(String),
    /// A parameter in the checkpoint has a different shape than the store.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape in the store.
        expected: Vec<usize>,
        /// Shape in the checkpoint.
        got: Vec<usize>,
    },
    /// The checkpoint text could not be parsed.
    Serde(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::MissingParameter(name) => write!(f, "missing parameter `{name}`"),
            NnError::ShapeMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "parameter `{name}` has shape {got:?}, expected {expected:?}"
            ),
            NnError::Serde(msg) => write!(f, "checkpoint (de)serialisation failed: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
        assert!(NnError::MissingParameter("w".into())
            .to_string()
            .contains("w"));
        let e = NnError::ShapeMismatch {
            name: "w".into(),
            expected: vec![2, 2],
            got: vec![3, 2],
        };
        assert!(e.to_string().contains("[3, 2]"));
    }
}
