//! Serving-throughput benchmark: `InferenceSession::predict_batch` versus
//! per-circuit sequential `predict` over a fleet of generated circuits,
//! plus the CSR kernel sweep — legacy tensor path vs the CSR level-packed
//! kernel (f32 and int8) on a single core.
//!
//! Writes a `BENCH_inference.json` baseline into the current directory so
//! future PRs can track the serving hot path. Accepts `--full` /
//! `DEEPGATE_FULL=1` for a larger sweep like the table binaries.
//!
//! ```bash
//! cargo run --release --bin bench_inference
//! ```
//!
//! With `--check`, no baseline is written; instead the fresh sweep is
//! compared against the committed `BENCH_inference.json` and the process
//! exits non-zero if the CSR kernel regressed — batch time more than 15%
//! over the committed value, speedup-vs-legacy below the committed floor,
//! or a broken exactness invariant. This is CI's "Kernel perf gate".

use deepgate::aig::aiger::{random_aig, write_aig};
use deepgate::gnn::CircuitGraph;
use deepgate::prelude::*;
use deepgate::QuantMode;
use deepgate_bench::Scale;
use serde::{Serialize, Value};
use std::time::Instant;

/// Fresh CSR batch time may exceed the committed one by at most this factor
/// before `--check` fails.
const CHECK_TOLERANCE: f64 = 1.15;

/// The speedup floor recorded into fresh baselines: the CSR f32 kernel must
/// beat the legacy tensor path by at least this factor, single-core.
const CSR_SPEEDUP_FLOOR: f64 = 2.0;

/// Probability gaps below this may reorder under int8 scoring; larger gaps
/// must keep their order (mirrors `crates/gnn/tests/csr_parity.rs`).
const RANK_MARGIN: f32 = 0.05;

/// The JSON baseline written for future PRs to compare against.
#[derive(Debug, Serialize)]
struct InferenceBaseline {
    scale: String,
    num_circuits: usize,
    total_nodes: usize,
    rounds: usize,
    sequential_ms: f64,
    batch_ms: f64,
    batch_prepared_ms: f64,
    speedup_batch: f64,
    speedup_prepared: f64,
    /// Circuits in the AIGER-shaped fleet (latch-bearing binary `.aig`
    /// payloads ingested through the AIGER path under the cut policy).
    aiger_num_circuits: usize,
    aiger_total_nodes: usize,
    aiger_sequential_ms: f64,
    aiger_batch_ms: f64,
    speedup_aiger_batch: f64,
    worker_threads: usize,
    /// Circuits in the CSR kernel sweep (the main fleet, single-core).
    csr_num_circuits: usize,
    csr_total_nodes: usize,
    /// Legacy tensor path: per-call tensor rebuilds, the pre-CSR kernel.
    legacy_kernel_ms: f64,
    /// CSR level-packed kernel, f32 scoring.
    csr_kernel_ms: f64,
    /// CSR level-packed kernel, int8 scoring.
    quantized_kernel_ms: f64,
    /// `legacy_kernel_ms / csr_kernel_ms`.
    csr_speedup: f64,
    /// The floor `--check` holds future runs to.
    csr_speedup_floor: f64,
    /// CSR f32 output is bit-identical to the legacy path on every node.
    csr_exact_match: bool,
    /// Largest per-node |int8 − f32| probability difference.
    quantized_max_abs_drift: f64,
    /// int8 kept the order of every gate-probability pair the f32 model
    /// separates by more than [`RANK_MARGIN`].
    quantized_rank_order_preserved: bool,
}

/// `true` iff for every pair of gate nodes whose exact probabilities differ
/// by more than [`RANK_MARGIN`], the quantized probabilities keep the same
/// order. O(n log n): sweep in exact-probability order, holding the largest
/// quantized value among nodes more than the margin below the cursor.
fn rank_order_preserved(circuit: &CircuitGraph, exact: &[f32], quantized: &[f32]) -> bool {
    let mut gates: Vec<(f32, f32)> = circuit
        .forward_batches
        .iter()
        .flat_map(|b| b.targets.iter().map(|&t| (exact[t], quantized[t])))
        .collect();
    gates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite probabilities"));
    let mut behind = 0;
    let mut behind_max = f32::NEG_INFINITY;
    for i in 0..gates.len() {
        while gates[behind].0 < gates[i].0 - RANK_MARGIN {
            behind_max = behind_max.max(gates[behind].1);
            behind += 1;
        }
        if gates[i].1 <= behind_max {
            return false;
        }
    }
    true
}

/// Reads a numeric field out of the committed baseline object.
fn committed_number(baseline: &Value, name: &str) -> Result<f64, DeepGateError> {
    let field = baseline
        .as_object()
        .and_then(|o| o.get(name))
        .ok_or_else(|| DeepGateError::Config(format!("committed baseline lacks `{name}`")))?;
    match field {
        Value::Float(v) => Ok(*v),
        Value::UInt(v) => Ok(*v as f64),
        Value::Int(v) => Ok(*v as f64),
        other => Err(DeepGateError::Config(format!(
            "committed `{name}` is not a number: {other:?}"
        ))),
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() -> Result<(), DeepGateError> {
    let check = std::env::args().any(|a| a == "--check");
    let scale = Scale::from_env_and_args();
    let (num_circuits, rounds) = match scale {
        Scale::Quick => (32usize, 8usize),
        Scale::Full => (128, 16),
    };

    // A trained-shape engine (weights are random; inference cost does not
    // depend on the weight values).
    let engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 32,
            num_iterations: 6,
            ..DeepGateConfig::default()
        })
        .num_patterns(1_024)
        .build()?;

    // A mixed fleet of circuits, as a serving deployment would see.
    let suites = [
        SuiteKind::Itc99,
        SuiteKind::Iwls,
        SuiteKind::Epfl,
        SuiteKind::Opencores,
    ];
    let per_suite = num_circuits.div_ceil(suites.len());
    let mut circuits = Vec::new();
    for (i, &suite) in suites.iter().enumerate() {
        let source = SuiteSource::new(suite, per_suite)
            .seed(90 + i as u64)
            .size_scale(0.15);
        circuits.extend(engine.prepare(&source)?);
    }
    circuits.truncate(num_circuits);
    let total_nodes: usize = circuits.iter().map(|c| c.num_nodes).sum();
    eprintln!(
        "[bench_inference] {} circuits, {} nodes total, {} rounds",
        circuits.len(),
        total_nodes,
        rounds
    );

    // An AIGER-shaped fleet: latch-bearing random AIGs serialised to binary
    // `.aig` bytes and ingested through the AIGER path (cut policy), the way
    // HWMCC-style clients deliver circuits to the server.
    let aiger_count = (num_circuits / 4).max(4);
    let mut aiger_circuits = Vec::new();
    for i in 0..aiger_count {
        let aig = random_aig(1_000 + i as u64, 8, 6, 160);
        let bytes = write_aig(&aig).map_err(deepgate::aig::AigError::from)?;
        let source = AigerBytes::new(format!("aiger_{i}"), bytes).latch_policy(LatchPolicy::Cut);
        aiger_circuits.extend(engine.prepare(&source)?);
    }
    let aiger_total_nodes: usize = aiger_circuits.iter().map(|c| c.num_nodes).sum();
    eprintln!(
        "[bench_inference] {} AIGER circuits, {} nodes total",
        aiger_circuits.len(),
        aiger_total_nodes
    );

    let session = engine.into_session();

    // Warm-up every path once before timing.
    for circuit in &circuits {
        let _ = session.predict(circuit)?;
    }
    let _ = session.predict_batch(&circuits)?;
    let prepared = session.prepare_batch(&circuits)?;
    let mut out = Vec::new();
    session.predict_batch_into(&prepared, &mut out)?;
    for circuit in &aiger_circuits {
        let _ = session.predict(circuit)?;
    }
    let _ = session.predict_batch(&aiger_circuits)?;

    // The three paths are interleaved round by round so CPU-frequency and
    // cache drift hit all of them equally; per-path medians over the rounds
    // keep outliers from skewing the baseline.
    let mut sequential_samples = Vec::with_capacity(rounds);
    let mut batch_samples = Vec::with_capacity(rounds);
    let mut prepared_samples = Vec::with_capacity(rounds);
    let mut aiger_sequential_samples = Vec::with_capacity(rounds);
    let mut aiger_batch_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        // Sequential: one predict call per circuit.
        let start = Instant::now();
        for circuit in &circuits {
            let _ = session.predict(circuit)?;
        }
        sequential_samples.push(start.elapsed().as_secs_f64() * 1e3);

        // Batched: fused unions, rayon-parallel chunks, built per call.
        let start = Instant::now();
        let _ = session.predict_batch(&circuits)?;
        batch_samples.push(start.elapsed().as_secs_f64() * 1e3);

        // Batched + prepared: unions, plans and output buffers all reused
        // across calls — the steady-state serving loop.
        let start = Instant::now();
        session.predict_batch_into(&prepared, &mut out)?;
        prepared_samples.push(start.elapsed().as_secs_f64() * 1e3);

        // The AIGER fleet, sequential and batched.
        let start = Instant::now();
        for circuit in &aiger_circuits {
            let _ = session.predict(circuit)?;
        }
        aiger_sequential_samples.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let _ = session.predict_batch(&aiger_circuits)?;
        aiger_batch_samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let sequential_ms = median(&mut sequential_samples);
    let batch_ms = median(&mut batch_samples);
    let batch_prepared_ms = median(&mut prepared_samples);
    let aiger_sequential_ms = median(&mut aiger_sequential_samples);
    let aiger_batch_ms = median(&mut aiger_batch_samples);

    // --- CSR kernel sweep: the before/after of the level-packed kernel.
    // Legacy tensor path vs CSR f32 vs CSR int8 over the main fleet, all
    // single-core and kernel-only: plans built and weights baked up front,
    // so the timings isolate the per-predict aggregation work.
    let dag = session.model().model();
    let store = session.model().store();
    let iterations = session.model().config().num_iterations;
    let reference_plans: Vec<_> = circuits.iter().map(|c| dag.reference_plan(c)).collect();
    let csr_plans: Vec<_> = circuits.iter().map(|c| dag.plan(c)).collect();
    let f32_kernel = dag.compile(store, QuantMode::F32);
    let int8_kernel = dag.compile(store, QuantMode::Int8);

    // One warm pass per path, keeping the outputs for the exactness gate.
    let mut legacy_probs: Vec<Vec<f32>> = Vec::with_capacity(circuits.len());
    let mut csr_probs: Vec<Vec<f32>> = Vec::with_capacity(circuits.len());
    let mut int8_probs: Vec<Vec<f32>> = Vec::with_capacity(circuits.len());
    let mut buf = Vec::new();
    for ((circuit, reference_plan), csr_plan) in
        circuits.iter().zip(&reference_plans).zip(&csr_plans)
    {
        dag.predict_reference_into(store, circuit, reference_plan, iterations, &mut buf)?;
        legacy_probs.push(buf.clone());
        f32_kernel.predict_into(csr_plan, iterations, &mut buf, None)?;
        csr_probs.push(buf.clone());
        int8_kernel.predict_into(csr_plan, iterations, &mut buf, None)?;
        int8_probs.push(buf.clone());
    }
    let csr_exact_match = legacy_probs.iter().zip(&csr_probs).all(|(a, b)| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    });
    let quantized_max_abs_drift = csr_probs
        .iter()
        .zip(&int8_probs)
        .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs() as f64))
        .fold(0.0f64, f64::max);
    let quantized_rank_order_preserved = circuits
        .iter()
        .zip(csr_probs.iter().zip(&int8_probs))
        .all(|(circuit, (exact, quantized))| rank_order_preserved(circuit, exact, quantized));

    let mut legacy_samples = Vec::with_capacity(rounds);
    let mut csr_samples = Vec::with_capacity(rounds);
    let mut int8_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for (circuit, plan) in circuits.iter().zip(&reference_plans) {
            dag.predict_reference_into(store, circuit, plan, iterations, &mut buf)?;
        }
        legacy_samples.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        for plan in &csr_plans {
            f32_kernel.predict_into(plan, iterations, &mut buf, None)?;
        }
        csr_samples.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        for plan in &csr_plans {
            int8_kernel.predict_into(plan, iterations, &mut buf, None)?;
        }
        int8_samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let legacy_kernel_ms = median(&mut legacy_samples);
    let csr_kernel_ms = median(&mut csr_samples);
    let quantized_kernel_ms = median(&mut int8_samples);

    let baseline = InferenceBaseline {
        scale: scale.label().to_string(),
        num_circuits: circuits.len(),
        total_nodes,
        rounds,
        sequential_ms,
        batch_ms,
        batch_prepared_ms,
        speedup_batch: sequential_ms / batch_ms,
        speedup_prepared: sequential_ms / batch_prepared_ms,
        aiger_num_circuits: aiger_circuits.len(),
        aiger_total_nodes,
        aiger_sequential_ms,
        aiger_batch_ms,
        speedup_aiger_batch: aiger_sequential_ms / aiger_batch_ms,
        worker_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        csr_num_circuits: circuits.len(),
        csr_total_nodes: total_nodes,
        legacy_kernel_ms,
        csr_kernel_ms,
        quantized_kernel_ms,
        csr_speedup: legacy_kernel_ms / csr_kernel_ms,
        csr_speedup_floor: CSR_SPEEDUP_FLOOR,
        csr_exact_match,
        quantized_max_abs_drift,
        quantized_rank_order_preserved,
    };
    println!(
        "sequential predict : {sequential_ms:>9.1} ms/round\n\
         predict_batch      : {batch_ms:>9.1} ms/round ({:.2}x)\n\
         + prepared buffers : {batch_prepared_ms:>9.1} ms/round ({:.2}x)\n\
         aiger sequential   : {aiger_sequential_ms:>9.1} ms/round\n\
         aiger batch        : {aiger_batch_ms:>9.1} ms/round ({:.2}x)\n\
         legacy kernel      : {legacy_kernel_ms:>9.1} ms/round\n\
         csr kernel (f32)   : {csr_kernel_ms:>9.1} ms/round ({:.2}x, exact={})\n\
         csr kernel (int8)  : {quantized_kernel_ms:>9.1} ms/round (drift {:.4}, ranks={})",
        baseline.speedup_batch,
        baseline.speedup_prepared,
        baseline.speedup_aiger_batch,
        baseline.csr_speedup,
        baseline.csr_exact_match,
        baseline.quantized_max_abs_drift,
        baseline.quantized_rank_order_preserved,
    );

    let path = "BENCH_inference.json";
    if check {
        return check_against_committed(path, &baseline);
    }
    let json = serde_json::to_string_pretty(&baseline)
        .map_err(|e| DeepGateError::Config(e.to_string()))?;
    std::fs::write(path, json).map_err(|e| DeepGateError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    eprintln!("[bench_inference] baseline written to {path}");
    Ok(())
}

/// The `--check` verdict: compares the fresh sweep against the committed
/// baseline and exits non-zero on a regression, without writing anything.
fn check_against_committed(path: &str, fresh: &InferenceBaseline) -> Result<(), DeepGateError> {
    let text = std::fs::read_to_string(path).map_err(|e| DeepGateError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    let committed: Value =
        serde_json::from_str(&text).map_err(|e| DeepGateError::Config(e.to_string()))?;
    let committed_csr_ms = committed_number(&committed, "csr_kernel_ms")?;
    let committed_floor = committed_number(&committed, "csr_speedup_floor")?;

    let mut failures = Vec::new();
    if fresh.csr_kernel_ms > committed_csr_ms * CHECK_TOLERANCE {
        failures.push(format!(
            "CSR batch time regressed: fresh {:.1} ms vs committed {:.1} ms (>{:.0}% over)",
            fresh.csr_kernel_ms,
            committed_csr_ms,
            (CHECK_TOLERANCE - 1.0) * 100.0
        ));
    }
    if fresh.csr_speedup < committed_floor {
        failures.push(format!(
            "CSR speedup {:.2}x fell below the committed floor {:.2}x",
            fresh.csr_speedup, committed_floor
        ));
    }
    if !fresh.csr_exact_match {
        failures.push("CSR f32 output is no longer bit-exact with the legacy path".to_string());
    }
    if !fresh.quantized_rank_order_preserved {
        failures.push("int8 scoring no longer preserves gate-probability rank order".to_string());
    }

    if failures.is_empty() {
        eprintln!(
            "[bench_inference] perf gate OK: {:.1} ms (committed {:.1} ms), speedup {:.2}x (floor {:.2}x)",
            fresh.csr_kernel_ms, committed_csr_ms, fresh.csr_speedup, committed_floor
        );
        Ok(())
    } else {
        for failure in &failures {
            eprintln!("[bench_inference] perf gate FAILED: {failure}");
        }
        std::process::exit(1)
    }
}
