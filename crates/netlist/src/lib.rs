//! Gate-level netlist intermediate representation for the DeepGate reproduction.
//!
//! This crate provides the circuit front-end of the system described in
//! *DeepGate: Learning Neural Representations of Logic Gates* (DAC 2022):
//!
//! - [`Netlist`] — a directed acyclic graph of logic gates with named primary
//!   inputs and outputs, supporting the common combinational gate alphabet
//!   (AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF/MUX plus constants).
//! - [`GateKind`] — the gate alphabet together with bit- and word-level
//!   evaluation.
//! - [`bench`] — a reader and writer for the ISCAS/BENCH text format, the
//!   interchange format used by the benchmark suites cited in the paper.
//! - [`verilog`] — a reader and writer for the structural gate-level
//!   Verilog subset the IWLS/OpenCores benchmarks circulate in.
//! - [`graph`] — DAG utilities shared by the whole workspace: topological
//!   ordering, levelisation, fan-out counting, transitive fan-in cones and
//!   basic structural statistics.
//! - [`builder`] — a small fluent API for constructing circuits in code, used
//!   heavily by the synthetic benchmark generators of `deepgate-dataset`.
//!
//! # Example
//!
//! ```rust
//! use deepgate_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), deepgate_netlist::NetlistError> {
//! let mut n = Netlist::new("toy");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate(GateKind::And, &[a, b])?;
//! n.mark_output(g, "y");
//! assert_eq!(n.num_gates(), 1);
//! assert_eq!(n.levels().max_level, 1);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod builder;
mod error;
mod gate;
pub mod graph;
mod netlist;
pub mod stats;
pub mod verilog;

pub use builder::NetlistBuilder;
pub use error::NetlistError;
pub use gate::GateKind;
pub use graph::{Levels, TopoOrder};
pub use netlist::{Netlist, Node, NodeId};
pub use stats::NetlistStats;
