//! Reproduces Table I: the statistics of the circuit training dataset
//! (#sub-circuits, node range and level range per benchmark suite).

use deepgate_bench::{build_dataset, ExperimentSettings, Report, Scale};
use deepgate_dataset::SuiteKind;

fn main() {
    let scale = Scale::from_env_and_args();
    let settings = ExperimentSettings::for_scale(scale);
    let dataset = build_dataset(&settings, true);

    let mut report = Report::new("table1", "Table I (dataset statistics)", scale);
    let mut total = 0usize;
    let mut global_min_nodes = usize::MAX;
    let mut global_max_nodes = 0usize;
    let mut global_min_level = usize::MAX;
    let mut global_max_level = 0usize;
    for stats in &dataset.suite_stats {
        total += stats.num_subcircuits;
        global_min_nodes = global_min_nodes.min(stats.min_nodes);
        global_max_nodes = global_max_nodes.max(stats.max_nodes);
        global_min_level = global_min_level.min(stats.min_level);
        global_max_level = global_max_level.max(stats.max_level);
        report.push_row(
            stats.suite.label(),
            vec![
                (
                    "#Subcircuits".to_string(),
                    stats.num_subcircuits.to_string(),
                ),
                (
                    "#Node".to_string(),
                    format!("[{}-{}]", stats.min_nodes, stats.max_nodes),
                ),
                (
                    "#Level".to_string(),
                    format!("[{}-{}]", stats.min_level, stats.max_level),
                ),
                (
                    "Paper #Subcircuits".to_string(),
                    stats.suite.paper_subcircuit_count().to_string(),
                ),
            ],
        );
    }
    report.push_row(
        "Total",
        vec![
            ("#Subcircuits".to_string(), total.to_string()),
            (
                "#Node".to_string(),
                format!("[{global_min_nodes}-{global_max_nodes}]"),
            ),
            (
                "#Level".to_string(),
                format!("[{global_min_level}-{global_max_level}]"),
            ),
            (
                "Paper #Subcircuits".to_string(),
                SuiteKind::ALL
                    .iter()
                    .map(|s| s.paper_subcircuit_count())
                    .sum::<usize>()
                    .to_string(),
            ),
        ],
    );
    report.print();
    report.save();
}
