//! The five large evaluation designs of Table III.
//!
//! These circuits are two orders of magnitude larger than the training
//! sub-circuits and are used to demonstrate DeepGate's generalisation
//! capability. The paper's designs (Arbiter, Squarer, Multiplier from the
//! EPFL suite plus an 80386 and a Viper processor) are emulated with the
//! generators of [`crate::generators`]; the `scale` knob lets the benchmark
//! harness run reduced versions quickly while `paper_scale` targets node
//! counts comparable to Table III.

use crate::generators;
use deepgate_netlist::Netlist;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five large designs used in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LargeDesign {
    /// A bus arbiter with repeated priority logic and heavy reconvergence
    /// (paper: 23.7k nodes, 173 levels).
    Arbiter,
    /// A combinational squarer (paper: 36.0k nodes, 373 levels).
    Squarer,
    /// A combinational multiplier (paper: 47.3k nodes, 521 levels).
    Multiplier,
    /// An 80386-like processor datapath slice (paper: 13.2k nodes, 122
    /// levels).
    Processor80386,
    /// A Viper-like processor datapath slice (paper: 40.5k nodes, 133
    /// levels).
    ViperProcessor,
}

impl LargeDesign {
    /// All designs, in the order of Table III.
    pub const ALL: [LargeDesign; 5] = [
        LargeDesign::Arbiter,
        LargeDesign::Squarer,
        LargeDesign::Multiplier,
        LargeDesign::Processor80386,
        LargeDesign::ViperProcessor,
    ];

    /// Display name matching Table III.
    pub fn label(self) -> &'static str {
        match self {
            LargeDesign::Arbiter => "Arbiter",
            LargeDesign::Squarer => "Squarer",
            LargeDesign::Multiplier => "Multiplier",
            LargeDesign::Processor80386 => "80386 Processor",
            LargeDesign::ViperProcessor => "Viper Processor",
        }
    }

    /// Node count reported in Table III (for the paper-vs-measured report).
    pub fn paper_node_count(self) -> usize {
        match self {
            LargeDesign::Arbiter => 23_700,
            LargeDesign::Squarer => 36_000,
            LargeDesign::Multiplier => 47_300,
            LargeDesign::Processor80386 => 13_200,
            LargeDesign::ViperProcessor => 40_500,
        }
    }

    /// Prediction error of the DeepSet baseline reported in Table III.
    pub fn paper_deepset_error(self) -> f64 {
        match self {
            LargeDesign::Arbiter => 0.0277,
            LargeDesign::Squarer => 0.0495,
            LargeDesign::Multiplier => 0.0220,
            LargeDesign::Processor80386 => 0.0534,
            LargeDesign::ViperProcessor => 0.0520,
        }
    }

    /// Prediction error of DeepGate reported in Table III.
    pub fn paper_deepgate_error(self) -> f64 {
        match self {
            LargeDesign::Arbiter => 0.0073,
            LargeDesign::Squarer => 0.0346,
            LargeDesign::Multiplier => 0.0159,
            LargeDesign::Processor80386 => 0.0387,
            LargeDesign::ViperProcessor => 0.0389,
        }
    }

    /// Generates the design at a given scale. `scale = 1.0` targets node
    /// counts comparable to Table III; smaller values shrink the design
    /// proportionally (the structure is preserved, only widths change).
    pub fn generate(self, scale: f64) -> Netlist {
        let scale = scale.clamp(0.02, 1.5);
        let sized = |paper_width: usize| ((paper_width as f64 * scale).ceil() as usize).max(2);
        let mut netlist = match self {
            // A priority arbiter over n requests has ~n^2/2 gates; 220
            // requests lands near 24k nodes.
            LargeDesign::Arbiter => generators::masked_arbiter(sized(150)),
            // An n-bit squarer has ~11 n^2 gates; n = 57 lands near 36k.
            LargeDesign::Squarer => generators::squarer(sized(57)),
            // An n-bit multiplier has ~11 n^2 gates; n = 65 lands near 47k.
            LargeDesign::Multiplier => generators::array_multiplier(sized(65)),
            // Processor datapaths grow roughly quadratically in `scale`.
            LargeDesign::Processor80386 => generators::processor_datapath(sized(9)),
            LargeDesign::ViperProcessor => generators::processor_datapath(sized(16)),
        };
        netlist.set_name(self.label().replace(' ', "_").to_lowercase());
        netlist
    }
}

impl fmt::Display for LargeDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate_aig::Aig;

    #[test]
    fn labels_and_paper_numbers() {
        assert_eq!(LargeDesign::ALL.len(), 5);
        assert_eq!(LargeDesign::Arbiter.label(), "Arbiter");
        for design in LargeDesign::ALL {
            assert!(design.paper_deepgate_error() < design.paper_deepset_error());
            assert!(design.paper_node_count() > 10_000);
        }
    }

    #[test]
    fn reduced_scale_designs_build_and_map_to_aig() {
        for design in LargeDesign::ALL {
            let netlist = design.generate(0.08);
            assert!(netlist.validate().is_ok(), "{design}");
            let aig = Aig::from_netlist(&netlist).unwrap();
            assert!(
                aig.num_ands() > 50,
                "{design} too small: {}",
                aig.num_ands()
            );
        }
    }

    #[test]
    fn scale_controls_size_monotonically() {
        let small = LargeDesign::Multiplier.generate(0.05);
        let medium = LargeDesign::Multiplier.generate(0.12);
        assert!(medium.num_gates() > small.num_gates());
    }
}
