//! Neural-network layers used by the DeepGate models: linear projections,
//! multi-layer perceptrons and gated recurrent unit cells.

use crate::{Graph, ParamId, ParamStore, Tensor, Var};

/// A dense affine layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Registers a new linear layer in `store`. Weights use Xavier-uniform
    /// initialisation seeded with `seed`; the bias starts at zero.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        seed: u64,
    ) -> Self {
        let weight = store.add(
            format!("{name}.weight"),
            Tensor::xavier_uniform(in_features, out_features, seed),
        );
        let bias = Some(store.add(format!("{name}.bias"), Tensor::zeros(1, out_features)));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Registers a linear layer without a bias term.
    pub fn new_without_bias(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        seed: u64,
    ) -> Self {
        let weight = store.add(
            format!("{name}.weight"),
            Tensor::xavier_uniform(in_features, out_features, seed),
        );
        Linear {
            weight,
            bias: None,
            in_features,
            out_features,
        }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer to a `[n, in_features]` input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, input: Var) -> Var {
        let w = g.param(store, self.weight);
        let projected = g.matmul(input, w);
        match self.bias {
            Some(bias) => {
                let b = g.param(store, bias);
                g.add_row(projected, b)
            }
            None => projected,
        }
    }

    /// The `[in_features, out_features]` weight tensor (read-only view into
    /// the store). Kernel compilers use this to bake weights into flat
    /// inference-time layouts.
    pub fn weight_tensor<'a>(&self, store: &'a ParamStore) -> &'a Tensor {
        store.value(self.weight)
    }

    /// The `[1, out_features]` bias tensor, if the layer has one.
    pub fn bias_tensor<'a>(&self, store: &'a ParamStore) -> Option<&'a Tensor> {
        self.bias.map(|b| store.value(b))
    }

    /// Gradient-free forward pass on plain tensors (used for inference on
    /// large circuits where recording an autodiff tape would be wasteful).
    pub fn forward_tensor(&self, store: &ParamStore, input: &Tensor) -> Tensor {
        let mut out = input.matmul(store.value(self.weight));
        if let Some(bias) = self.bias {
            let b = store.value(bias);
            for i in 0..out.rows() {
                for j in 0..out.cols() {
                    out.set(i, j, out.get(i, j) + b.get(0, j));
                }
            }
        }
        out
    }
}

/// The hidden-layer activation of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// A multi-layer perceptron with a configurable activation on hidden layers
/// and a linear final layer (optionally followed by a sigmoid, as used by the
/// probability regressor of DeepGate).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    sigmoid_output: bool,
}

impl Mlp {
    /// Registers an MLP with the given layer sizes, e.g. `[64, 32, 1]` builds
    /// two linear layers 64→32→1.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        sizes: &[usize],
        activation: Activation,
        sigmoid_output: bool,
        seed: u64,
    ) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least two layer sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                Linear::new(
                    store,
                    &format!("{name}.layer{i}"),
                    w[0],
                    w[1],
                    seed + i as u64,
                )
            })
            .collect();
        Mlp {
            layers,
            activation,
            sigmoid_output,
        }
    }

    /// The linear layers in application order.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The hidden-layer activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Whether a sigmoid follows the final linear layer.
    pub fn has_sigmoid_output(&self) -> bool {
        self.sigmoid_output
    }

    /// Applies the MLP to a `[n, sizes[0]]` input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, input: Var) -> Var {
        let mut x = input;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, store, x);
            if i < last {
                x = match self.activation {
                    Activation::Relu => g.relu(x),
                    Activation::Tanh => g.tanh(x),
                    Activation::Sigmoid => g.sigmoid(x),
                };
            }
        }
        if self.sigmoid_output {
            x = g.sigmoid(x);
        }
        x
    }

    /// Gradient-free forward pass on plain tensors.
    pub fn forward_tensor(&self, store: &ParamStore, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward_tensor(store, &x);
            if i < last {
                x = match self.activation {
                    Activation::Relu => x.map(|v| v.max(0.0)),
                    Activation::Tanh => x.map(f32::tanh),
                    Activation::Sigmoid => x.map(|v| 1.0 / (1.0 + (-v).exp())),
                };
            }
        }
        if self.sigmoid_output {
            x = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        }
        x
    }
}

/// A gated recurrent unit cell operating on row-batched states.
///
/// Follows the standard GRU formulation:
///
/// ```text
/// r = σ(x W_xr + h W_hr + b_r)
/// z = σ(x W_xz + h W_hz + b_z)
/// n = tanh(x W_xn + (r ⊙ h) W_hn + b_n)
/// h' = (1 - z) ⊙ n + z ⊙ h
/// ```
///
/// DeepGate uses a GRU as the COMBINE function (Eq. 6): the aggregated
/// message concatenated with the gate-type one-hot is the input `x`, and the
/// node's previous hidden state is `h`.
#[derive(Debug, Clone)]
pub struct GruCell {
    w_xr: Linear,
    w_hr: Linear,
    w_xz: Linear,
    w_hz: Linear,
    w_xn: Linear,
    w_hn: Linear,
    input_size: usize,
    hidden_size: usize,
}

impl GruCell {
    /// Registers a GRU cell with the given input and hidden sizes.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_size: usize,
        hidden_size: usize,
        seed: u64,
    ) -> Self {
        GruCell {
            w_xr: Linear::new(
                store,
                &format!("{name}.w_xr"),
                input_size,
                hidden_size,
                seed,
            ),
            w_hr: Linear::new_without_bias(
                store,
                &format!("{name}.w_hr"),
                hidden_size,
                hidden_size,
                seed + 1,
            ),
            w_xz: Linear::new(
                store,
                &format!("{name}.w_xz"),
                input_size,
                hidden_size,
                seed + 2,
            ),
            w_hz: Linear::new_without_bias(
                store,
                &format!("{name}.w_hz"),
                hidden_size,
                hidden_size,
                seed + 3,
            ),
            w_xn: Linear::new(
                store,
                &format!("{name}.w_xn"),
                input_size,
                hidden_size,
                seed + 4,
            ),
            w_hn: Linear::new_without_bias(
                store,
                &format!("{name}.w_hn"),
                hidden_size,
                hidden_size,
                seed + 5,
            ),
            input_size,
            hidden_size,
        }
    }

    /// Input feature dimension.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden state dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// The six gate projections in `[xr, hr, xz, hz, xn, hn]` order — the
    /// reset, update and candidate gates' input-side and hidden-side layers.
    pub fn gates(&self) -> [&Linear; 6] {
        [
            &self.w_xr, &self.w_hr, &self.w_xz, &self.w_hz, &self.w_xn, &self.w_hn,
        ]
    }

    /// Computes the next hidden state for a batch of rows.
    ///
    /// `input` is `[n, input_size]`, `hidden` is `[n, hidden_size]`; the
    /// result is `[n, hidden_size]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, input: Var, hidden: Var) -> Var {
        let xr = self.w_xr.forward(g, store, input);
        let hr = self.w_hr.forward(g, store, hidden);
        let pre_r = g.add(xr, hr);
        let r = g.sigmoid(pre_r);

        let xz = self.w_xz.forward(g, store, input);
        let hz = self.w_hz.forward(g, store, hidden);
        let pre_z = g.add(xz, hz);
        let z = g.sigmoid(pre_z);

        let gated_h = g.mul(r, hidden);
        let xn = self.w_xn.forward(g, store, input);
        let hn = self.w_hn.forward(g, store, gated_h);
        let pre_n = g.add(xn, hn);
        let n = g.tanh(pre_n);

        let one_minus_z = g.one_minus(z);
        let new_part = g.mul(one_minus_z, n);
        let old_part = g.mul(z, hidden);
        g.add(new_part, old_part)
    }

    /// Gradient-free forward pass on plain tensors.
    pub fn forward_tensor(&self, store: &ParamStore, input: &Tensor, hidden: &Tensor) -> Tensor {
        let sigmoid = |t: Tensor| t.map(|v| 1.0 / (1.0 + (-v).exp()));
        let r = sigmoid(
            self.w_xr
                .forward_tensor(store, input)
                .add(&self.w_hr.forward_tensor(store, hidden)),
        );
        let z = sigmoid(
            self.w_xz
                .forward_tensor(store, input)
                .add(&self.w_hz.forward_tensor(store, hidden)),
        );
        let gated = r.mul(hidden);
        let n = self
            .w_xn
            .forward_tensor(store, input)
            .add(&self.w_hn.forward_tensor(store, &gated))
            .map(f32::tanh);
        let one_minus_z = z.map(|v| 1.0 - v);
        one_minus_z.mul(&n).add(&z.mul(hidden))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adam;

    #[test]
    fn linear_shapes_and_forward() {
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "l", 3, 2, 1);
        assert_eq!(layer.in_features(), 3);
        assert_eq!(layer.out_features(), 2);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(4, 3));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), [4, 2]);
        // Without bias there are fewer parameters.
        let mut store2 = ParamStore::new();
        let _ = Linear::new_without_bias(&mut store2, "l", 3, 2, 1);
        assert_eq!(store2.len(), 1);
    }

    #[test]
    fn mlp_forward_shapes_and_sigmoid_range() {
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[4, 8, 1], Activation::Relu, true, 3);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(5, 4, 1.0, 9));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), [5, 1]);
        assert!(g
            .value(y)
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "at least two layer sizes")]
    fn mlp_rejects_single_size() {
        let mut store = ParamStore::new();
        let _ = Mlp::new(&mut store, "m", &[4], Activation::Relu, false, 0);
    }

    #[test]
    fn gru_preserves_shape_and_gates_interpolate() {
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "gru", 3, 4, 7);
        assert_eq!(gru.input_size(), 3);
        assert_eq!(gru.hidden_size(), 4);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(6, 3, 1.0, 1));
        let h = g.input(Tensor::randn(6, 4, 1.0, 2));
        let h2 = gru.forward(&mut g, &store, x, h);
        assert_eq!(g.value(h2).shape(), [6, 4]);
        // The GRU output is an interpolation between h and tanh(...) so it is
        // bounded by max(|h|, 1).
        let bound = g
            .value(h)
            .as_slice()
            .iter()
            .fold(1.0f32, |acc, &v| acc.max(v.abs()));
        assert!(g
            .value(h2)
            .as_slice()
            .iter()
            .all(|&v| v.abs() <= bound + 1e-5));
    }

    #[test]
    fn linear_learns_linear_function() {
        // y = 2 x1 - x2, trained with Adam.
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fit", 2, 1, 5);
        let mut adam = Adam::with_defaults(0.05);
        let x = Tensor::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, 1.0],
            &[0.5, 2.0],
        ]);
        let target = Tensor::from_rows(&[&[2.0], &[-1.0], &[1.0], &[3.0], &[-1.0]]);
        let mut last_loss = f32::MAX;
        for _ in 0..300 {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let pred = layer.forward(&mut g, &store, xv);
            let loss = g.mse_loss(pred, &target);
            last_loss = g.value(loss).get(0, 0);
            g.backward(loss, &mut store);
            adam.step(&mut store);
            store.zero_grad();
        }
        assert!(last_loss < 1e-3, "loss did not converge: {last_loss}");
    }

    #[test]
    fn tensor_forward_matches_tape_forward() {
        let mut store = ParamStore::new();
        let linear = Linear::new(&mut store, "l", 3, 4, 21);
        let mlp = Mlp::new(&mut store, "m", &[4, 8, 1], Activation::Relu, true, 22);
        let gru = GruCell::new(&mut store, "g", 3, 4, 23);
        let x = Tensor::randn(5, 3, 1.0, 31);
        let h = Tensor::randn(5, 4, 1.0, 32);

        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let hv = g.input(h.clone());
        let lin_tape = linear.forward(&mut g, &store, xv);
        let mlp_tape = mlp.forward(&mut g, &store, lin_tape);
        let gru_tape = gru.forward(&mut g, &store, xv, hv);

        let lin_tensor = linear.forward_tensor(&store, &x);
        let mlp_tensor = mlp.forward_tensor(&store, &lin_tensor);
        let gru_tensor = gru.forward_tensor(&store, &x, &h);

        let close = |a: &Tensor, b: &Tensor| {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() < 1e-5)
        };
        assert!(close(g.value(lin_tape), &lin_tensor));
        assert!(close(g.value(mlp_tape), &mlp_tensor));
        assert!(close(g.value(gru_tape), &gru_tensor));
    }

    #[test]
    fn gru_can_learn_to_copy_input_sign() {
        // Train a tiny GRU + readout to output 1 for positive inputs and 0
        // for negative inputs after one step; checks end-to-end gradients.
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "gru", 1, 4, 11);
        let readout = Linear::new(&mut store, "ro", 4, 1, 13);
        let mut adam = Adam::with_defaults(0.05);
        let inputs = Tensor::from_rows(&[&[1.0], &[-1.0], &[0.5], &[-0.5]]);
        let target = Tensor::from_rows(&[&[1.0], &[0.0], &[1.0], &[0.0]]);
        let mut last_loss = f32::MAX;
        for _ in 0..400 {
            let mut g = Graph::new();
            let x = g.input(inputs.clone());
            let h0 = g.input(Tensor::zeros(4, 4));
            let h1 = gru.forward(&mut g, &store, x, h0);
            let logits = readout.forward(&mut g, &store, h1);
            let pred = g.sigmoid(logits);
            let loss = g.mse_loss(pred, &target);
            last_loss = g.value(loss).get(0, 0);
            g.backward(loss, &mut store);
            adam.step(&mut store);
            store.zero_grad();
        }
        assert!(last_loss < 0.05, "gru failed to learn: {last_loss}");
    }
}
