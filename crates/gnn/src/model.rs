//! The common interface all probability-prediction models implement.

use crate::{CircuitGraph, GnnError};
use deepgate_nn::{Graph, ParamStore, Tensor, Var};

/// A model that predicts the signal probability of every node of a circuit.
///
/// The trainer in `deepgate-core` and the benchmark harness treat every model
/// — GCN, DAG-ConvGNN, DAG-RecGNN and DeepGate itself — through this trait,
/// which keeps the comparison of Table II honest: they share the same data
/// pipeline, the same loss and the same evaluation metric.
pub trait ProbabilityModel {
    /// Builds the forward pass on the autodiff tape and returns the
    /// `[num_nodes, 1]` prediction variable (values in `[0, 1]`).
    fn forward(&self, g: &mut Graph, store: &ParamStore, circuit: &CircuitGraph) -> Var;

    /// Fallible forward pass: validates model/circuit compatibility before
    /// recording the tape. Models with structural requirements (e.g. a fixed
    /// feature encoding) override this to report [`GnnError`] instead of
    /// panicking.
    fn try_forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        circuit: &CircuitGraph,
    ) -> Result<Var, GnnError> {
        Ok(self.forward(g, store, circuit))
    }

    /// Gradient-free forward pass; the default implementation runs the tape
    /// forward and extracts the values, models override it with a cheaper
    /// tensor-only path for inference on large circuits.
    fn predict(&self, store: &ParamStore, circuit: &CircuitGraph) -> Vec<f32> {
        let mut g = Graph::new();
        let pred = self.forward(&mut g, store, circuit);
        g.value(pred).as_slice().to_vec()
    }

    /// Fallible gradient-free prediction — the serving entry point. Like
    /// [`ProbabilityModel::try_forward`], models override this to turn
    /// compatibility panics into [`GnnError`]s.
    fn try_predict(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
    ) -> Result<Vec<f32>, GnnError> {
        Ok(self.predict(store, circuit))
    }

    /// A short, human-readable model name (used in experiment tables).
    fn name(&self) -> String;
}

/// Average prediction error (Eq. 8 of the paper): the mean absolute
/// difference between predictions and labels.
///
/// The error is computed over logic-gate nodes only (primary inputs have a
/// trivially known probability of 0.5 and would dilute the metric).
///
/// # Errors
///
/// Returns [`GnnError::UnlabelledCircuit`] if the circuit has no labels and
/// [`GnnError::LengthMismatch`] if the prediction length does not match.
pub fn evaluate_prediction_error(
    predictions: &[f32],
    circuit: &CircuitGraph,
) -> Result<f64, GnnError> {
    let labels = circuit
        .labels
        .as_ref()
        .ok_or_else(|| GnnError::UnlabelledCircuit {
            name: circuit.name.clone(),
        })?;
    if predictions.len() != labels.len() {
        return Err(GnnError::LengthMismatch {
            name: circuit.name.clone(),
            expected: labels.len(),
            got: predictions.len(),
        });
    }
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for i in 0..labels.len() {
        if circuit.gate_mask[i] {
            sum += (predictions[i] as f64 - labels[i] as f64).abs();
            count += 1;
        }
    }
    Ok(if count == 0 { 0.0 } else { sum / count as f64 })
}

/// Computes the L1 training loss over gate nodes on the tape: predictions and
/// labels are masked so primary inputs do not contribute gradient.
///
/// # Errors
///
/// Returns [`GnnError::UnlabelledCircuit`] if the circuit has no labels.
pub fn masked_l1_loss(
    g: &mut Graph,
    predictions: Var,
    circuit: &CircuitGraph,
) -> Result<Var, GnnError> {
    if circuit.labels.is_none() {
        return Err(GnnError::UnlabelledCircuit {
            name: circuit.name.clone(),
        });
    }
    let labels = circuit.label_tensor();
    let mask: Vec<f32> = circuit
        .gate_mask
        .iter()
        .map(|&m| if m { 1.0 } else { 0.0 })
        .collect();
    let num_gates = circuit.num_gates().max(1) as f32;
    let mask_t = g.input(Tensor::column(&mask));
    let masked_pred = g.mul(predictions, mask_t);
    let masked_labels = Tensor::column(
        &labels
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&l, &m)| l * m)
            .collect::<Vec<f32>>(),
    );
    // Mean over all nodes rescaled to a mean over gate nodes.
    let raw = g.l1_loss(masked_pred, &masked_labels);
    Ok(g.scale(raw, circuit.num_nodes as f32 / num_gates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureEncoding;
    use deepgate_netlist::{GateKind, Netlist};

    fn labelled_graph() -> CircuitGraph {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(g1, "y");
        let mut graph = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        graph.set_labels(vec![0.5, 0.5, 0.25]);
        graph
    }

    #[test]
    fn prediction_error_only_counts_gates() {
        let graph = labelled_graph();
        // Inputs are wrong by 0.5 but must not count; the gate is wrong by 0.05.
        let err = evaluate_prediction_error(&[0.0, 1.0, 0.30], &graph).unwrap();
        assert!((err - 0.05).abs() < 1e-6);
        // Perfect prediction gives zero error.
        assert_eq!(
            evaluate_prediction_error(&[0.5, 0.5, 0.25], &graph).unwrap(),
            0.0
        );
    }

    #[test]
    fn masked_loss_ignores_input_nodes() {
        let graph = labelled_graph();
        let mut g = Graph::new();
        // Predictions that are perfect on the gate but wrong on the inputs.
        let pred = g.input(Tensor::column(&[0.9, 0.1, 0.25]));
        let loss = masked_l1_loss(&mut g, pred, &graph).unwrap();
        assert!(g.value(loss).get(0, 0).abs() < 1e-6);
    }

    #[test]
    fn prediction_error_reports_length_mismatch() {
        let graph = labelled_graph();
        let err = evaluate_prediction_error(&[0.1], &graph).unwrap_err();
        assert!(matches!(
            err,
            GnnError::LengthMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn unlabelled_circuit_is_an_error_not_a_panic() {
        let mut n = Netlist::new("bare");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(g1, "y");
        let graph = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        assert!(matches!(
            evaluate_prediction_error(&[0.5, 0.5, 0.25], &graph),
            Err(GnnError::UnlabelledCircuit { .. })
        ));
        let mut g = Graph::new();
        let pred = g.input(Tensor::column(&[0.5, 0.5, 0.25]));
        assert!(matches!(
            masked_l1_loss(&mut g, pred, &graph),
            Err(GnnError::UnlabelledCircuit { .. })
        ));
    }
}
