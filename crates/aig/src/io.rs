//! AIGER-ASCII (`aag`) reader and writer.
//!
//! The AIGER format is the de-facto interchange format for And-Inverter
//! Graphs. Only the combinational subset is supported (no latches), matching
//! the combinational circuits DeepGate operates on.

use crate::{Aig, AigError, AigLit, AigNodeKind};
use std::fmt::Write as _;

/// Serialises an [`Aig`] to AIGER-ASCII text (`aag` header, no latches).
pub fn write_aag(aig: &Aig) -> String {
    // AIGER requires variables numbered 1..=M with inputs first, then ANDs.
    // Our internal indices already satisfy that layout (0 = const, inputs,
    // then ANDs), so variable i maps to node i.
    let m = aig.len() - 1;
    let i = aig.num_inputs();
    let a = aig.num_ands();
    let o = aig.num_outputs();
    let mut out = String::new();
    let _ = writeln!(out, "aag {m} {i} 0 {o} {a}");
    for &input in aig.inputs() {
        let _ = writeln!(out, "{}", AigLit::positive(input).raw());
    }
    for (lit, _) in aig.outputs() {
        let _ = writeln!(out, "{}", lit.raw());
    }
    for (idx, node) in aig.iter() {
        if node.kind == AigNodeKind::And {
            let _ = writeln!(
                out,
                "{} {} {}",
                AigLit::positive(idx).raw(),
                node.fanin0.raw(),
                node.fanin1.raw()
            );
        }
    }
    // Symbol table for inputs and outputs, then a comment with the name.
    for (pos, _) in aig.inputs().iter().enumerate() {
        let _ = writeln!(out, "i{pos} {}", aig.input_name(pos));
    }
    for (pos, (_, name)) in aig.outputs().iter().enumerate() {
        let _ = writeln!(out, "o{pos} {name}");
    }
    let _ = writeln!(out, "c\n{}", aig.name());
    out
}

/// Parses AIGER-ASCII text into an [`Aig`].
///
/// # Errors
///
/// Returns [`AigError::Parse`] for malformed input and
/// [`AigError::HeaderMismatch`] when the header counts disagree with the
/// body. Latches are not supported and produce a parse error.
pub fn parse_aag(text: &str, name: impl Into<String>) -> Result<Aig, AigError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(AigError::Parse {
        line: 1,
        message: "empty file".into(),
    })?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 6 || parts[0] != "aag" {
        return Err(AigError::Parse {
            line: 1,
            message: "expected header `aag M I L O A`".into(),
        });
    }
    let parse_num = |s: &str, line: usize| -> Result<usize, AigError> {
        s.parse().map_err(|_| AigError::Parse {
            line,
            message: format!("invalid number `{s}`"),
        })
    };
    let m = parse_num(parts[1], 1)?;
    let i = parse_num(parts[2], 1)?;
    let l = parse_num(parts[3], 1)?;
    let o = parse_num(parts[4], 1)?;
    let a = parse_num(parts[5], 1)?;
    if l != 0 {
        return Err(AigError::Parse {
            line: 1,
            message: "latches are not supported".into(),
        });
    }
    if m != i + a {
        return Err(AigError::HeaderMismatch(format!(
            "M = {m} but I + A = {}",
            i + a
        )));
    }

    let mut aig = Aig::new(name);
    let mut input_lits = Vec::with_capacity(i);
    for k in 0..i {
        let (line_no, line) = lines.next().ok_or(AigError::Parse {
            line: k + 2,
            message: "missing input line".into(),
        })?;
        let raw = parse_num(line.trim(), line_no + 1)? as u32;
        if !raw.is_multiple_of(2) {
            return Err(AigError::Parse {
                line: line_no + 1,
                message: "input literal must be even".into(),
            });
        }
        input_lits.push(raw);
        let lit = aig.add_input(format!("i{k}"));
        if lit.raw() != raw {
            return Err(AigError::HeaderMismatch(format!(
                "input {k} expected literal {} got {raw}",
                lit.raw()
            )));
        }
    }
    let mut output_lits = Vec::with_capacity(o);
    for k in 0..o {
        let (line_no, line) = lines.next().ok_or(AigError::Parse {
            line: k + 2 + i,
            message: "missing output line".into(),
        })?;
        output_lits.push(parse_num(line.trim(), line_no + 1)? as u32);
    }
    for k in 0..a {
        let (line_no, line) = lines.next().ok_or(AigError::Parse {
            line: k + 2 + i + o,
            message: "missing and line".into(),
        })?;
        let nums: Vec<&str> = line.split_whitespace().collect();
        if nums.len() != 3 {
            return Err(AigError::Parse {
                line: line_no + 1,
                message: "and line must have three literals".into(),
            });
        }
        let lhs = parse_num(nums[0], line_no + 1)? as u32;
        let rhs0 = parse_num(nums[1], line_no + 1)? as u32;
        let rhs1 = parse_num(nums[2], line_no + 1)? as u32;
        let expected = AigLit::positive(aig.len());
        if lhs != expected.raw() {
            return Err(AigError::HeaderMismatch(format!(
                "and {k}: expected lhs {} got {lhs}",
                expected.raw()
            )));
        }
        let f0 = AigLit::from_raw(rhs0);
        let f1 = AigLit::from_raw(rhs1);
        if f0.node() >= expected.node() || f1.node() >= expected.node() {
            return Err(AigError::Parse {
                line: line_no + 1,
                message: "and fan-in references a later node".into(),
            });
        }
        // Bypass simplification: push the node verbatim to preserve indices.
        aig.push_raw_and(f0, f1);
    }
    // Symbol table (optional): iN / oN names.
    let mut input_names: Vec<Option<String>> = vec![None; i];
    let mut output_names: Vec<Option<String>> = vec![None; o];
    for (_, line) in lines {
        let line = line.trim();
        if line == "c" {
            break;
        }
        if let Some(rest) = line.strip_prefix('i') {
            if let Some((idx, name)) = rest.split_once(' ') {
                if let Ok(idx) = idx.parse::<usize>() {
                    if idx < i {
                        input_names[idx] = Some(name.to_string());
                    }
                }
            }
        } else if let Some(rest) = line.strip_prefix('o') {
            if let Some((idx, name)) = rest.split_once(' ') {
                if let Ok(idx) = idx.parse::<usize>() {
                    if idx < o {
                        output_names[idx] = Some(name.to_string());
                    }
                }
            }
        }
    }
    for (k, raw) in output_lits.into_iter().enumerate() {
        let lit = AigLit::from_raw(raw);
        if lit.node() >= aig.len() {
            return Err(AigError::UnknownNode(lit.node()));
        }
        let name = output_names[k].clone().unwrap_or_else(|| format!("o{k}"));
        aig.add_output(lit, name);
    }
    for (k, name) in input_names.into_iter().enumerate() {
        if let Some(name) = name {
            aig.set_input_name(k, name);
        }
    }
    aig.rebuild_strash();
    Ok(aig)
}

impl Aig {
    /// Appends an AND node verbatim (no simplification, no strashing). Used
    /// by the AIGER parser to preserve literal numbering.
    pub(crate) fn push_raw_and(&mut self, fanin0: AigLit, fanin1: AigLit) -> AigLit {
        let index = self.len();
        self.push_node(AigNodeKind::And, fanin0, fanin1);
        AigLit::positive(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let y = aig.or(ab, c.complement());
        aig.add_output(y, "y");
        aig.add_output(ab.complement(), "nab");
        aig
    }

    #[test]
    fn roundtrip_aag() {
        let aig = sample_aig();
        let text = write_aag(&aig);
        let parsed = parse_aag(&text, "sample").unwrap();
        assert!(parsed.validate().is_ok());
        assert_eq!(parsed.num_inputs(), aig.num_inputs());
        assert_eq!(parsed.num_ands(), aig.num_ands());
        assert_eq!(parsed.num_outputs(), aig.num_outputs());
        assert_eq!(parsed.input_name(0), "a");
        assert_eq!(parsed.outputs()[0].1, "y");
        // Output literals are preserved exactly.
        assert_eq!(parsed.outputs()[0].0, aig.outputs()[0].0);
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(parse_aag("", "x").is_err());
        assert!(parse_aag("aig 1 1 0 0 0\n", "x").is_err());
        assert!(parse_aag("aag 1 1 1 0 0\n2\n", "x").is_err()); // latches
        assert!(parse_aag("aag 5 1 0 0 1\n2\n", "x").is_err()); // M mismatch
    }

    #[test]
    fn parse_rejects_forward_reference() {
        // and node 2 references literal 6 (node 3) which does not exist yet.
        let text = "aag 2 1 0 1 1\n2\n4\n4 6 2\n";
        assert!(parse_aag(text, "x").is_err());
    }

    #[test]
    fn parse_minimal_constant_circuit() {
        let text = "aag 0 0 0 1 0\n1\n";
        let aig = parse_aag(text, "const").unwrap();
        assert_eq!(aig.num_outputs(), 1);
        assert_eq!(aig.outputs()[0].0, AigLit::TRUE);
    }
}
