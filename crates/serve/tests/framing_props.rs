//! Property tests of the event loop's zero-copy line framer: under
//! arbitrary chunk boundaries (1-byte reads, requests split mid-JSON,
//! multiple requests per read) it must reassemble the *identical* request
//! sequence the blocking `BufRead` reader produced — including the exact
//! byte-limit overflow boundary of the `take(max).read_line` reader it
//! replaced.

use deepgate_serve::{LineFramer, LineOverflow};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Cursor, Read};

/// The reference implementation: the blocking reader the framer replaced,
/// expressed through `BufRead::read_until` over the whole stream. Returns
/// the complete lines (without newlines) and the unterminated tail.
fn blocking_reference(stream: &[u8]) -> (Vec<Vec<u8>>, Vec<u8>) {
    let mut reader = BufReader::new(Cursor::new(stream));
    let mut complete = Vec::new();
    loop {
        let mut line = Vec::new();
        let n = reader.read_until(b'\n', &mut line).expect("cursor reads");
        if n == 0 {
            return (complete, Vec::new());
        }
        if line.last() == Some(&b'\n') {
            line.pop();
            complete.push(line);
        } else {
            return (complete, line);
        }
    }
}

/// The reference byte-limit reader: the blocking front end's
/// `take(remaining).read_line` step. Returns the lines accepted before the
/// stream ended or overflowed, and whether it overflowed (a line hit the
/// limit without its newline).
fn blocking_reference_limited(stream: &[u8], max: u64) -> (Vec<Vec<u8>>, bool) {
    let mut reader = BufReader::new(Cursor::new(stream));
    let mut complete = Vec::new();
    loop {
        let mut line = Vec::new();
        let n = (&mut reader)
            .take(max)
            .read_until(b'\n', &mut line)
            .expect("cursor reads");
        if n == 0 {
            return (complete, false); // clean EOF between lines
        }
        if line.last() == Some(&b'\n') {
            line.pop();
            complete.push(line);
        } else {
            // No newline: EOF mid-line, or the byte limit hit. The
            // blocking server treated `len >= max` as the overflow error
            // and a shorter partial as a silent close.
            return (complete, line.len() as u64 >= max);
        }
    }
}

/// Drives the framer over `stream` cut at the chunk boundaries drawn from
/// `cuts` (cycled; 1-byte reads when empty). Returns the lines sliced out,
/// the leftover pending bytes, and whether the limit tripped.
fn drive_framer(stream: &[u8], cuts: &[usize], max: u64) -> (Vec<Vec<u8>>, usize, bool) {
    let mut framer = LineFramer::new(max);
    let mut got = Vec::new();
    let mut pos = 0;
    let mut cut = cuts.iter().copied().cycle();
    while pos < stream.len() {
        let n = cut.next().unwrap_or(1).min(stream.len() - pos);
        framer.push(&stream[pos..pos + n]);
        pos += n;
        loop {
            match framer.next_line() {
                Ok(Some(line)) => got.push(line.to_vec()),
                Ok(None) => break,
                Err(LineOverflow) => return (got, framer.pending(), true),
            }
        }
        framer.compact();
    }
    (got, framer.pending(), false)
}

/// Joins payload lines (newline-stripped) into one wire stream, with an
/// optional unterminated tail.
fn wire_stream(lines: &[Vec<u8>], tail: &[u8]) -> Vec<u8> {
    let mut stream = Vec::new();
    for line in lines {
        stream.extend_from_slice(line);
        stream.push(b'\n');
    }
    stream.extend_from_slice(tail);
    stream
}

fn strip_newlines(bytes: Vec<u8>) -> Vec<u8> {
    bytes
        .into_iter()
        .map(|b| if b == b'\n' { b' ' } else { b })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Unlimited framer ≡ blocking reader: same lines, same leftover tail,
    /// no matter how the bytes are chunked.
    #[test]
    fn framer_reassembles_identically_to_the_blocking_reader(
        lines in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..16),
        tail in prop::collection::vec(any::<u8>(), 0..24),
        cuts in prop::collection::vec(1usize..9, 0..64),
    ) {
        let lines: Vec<Vec<u8>> = lines.into_iter().map(strip_newlines).collect();
        let tail = strip_newlines(tail);
        let stream = wire_stream(&lines, &tail);

        let (expected, expected_tail) = blocking_reference(&stream);
        let (got, pending, overflowed) = drive_framer(&stream, &cuts, 0);

        prop_assert!(!overflowed, "no limit was set");
        prop_assert_eq!(&got, &expected);
        // The reference agrees with the construction itself.
        prop_assert_eq!(&got, &lines);
        prop_assert_eq!(pending, expected_tail.len());
    }

    /// Limited framer ≡ the blocking `take(max).read_line` reader: the
    /// accepted lines AND the overflow boundary match exactly, no matter
    /// how the bytes are chunked.
    #[test]
    fn framer_byte_limit_matches_the_blocking_reader_exactly(
        lines in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..20), 0..12),
        tail in prop::collection::vec(any::<u8>(), 0..20),
        cuts in prop::collection::vec(1usize..9, 0..64),
        max in 1u64..24,
    ) {
        let lines: Vec<Vec<u8>> = lines.into_iter().map(strip_newlines).collect();
        let tail = strip_newlines(tail);
        let stream = wire_stream(&lines, &tail);

        let (expected, expected_overflow) = blocking_reference_limited(&stream, max);
        let (got, _, overflowed) = drive_framer(&stream, &cuts, max);

        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(overflowed, expected_overflow);
    }
}
