//! [`ServeMetrics`] — the server's telemetry registry and the shared handles
//! every serving subsystem records through.

use deepgate::telemetry::{Counter, Gauge, Histogram, Registry, Snapshot, StageSet};
use deepgate::EngineMetrics;
use serde::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Telemetry handles of the micro-batching scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerMetrics {
    /// `scheduler_submitted_total` — requests accepted into the queue.
    pub submitted: Arc<Counter>,
    /// `scheduler_completed_total` — requests answered with predictions.
    pub completed: Arc<Counter>,
    /// `scheduler_failed_total` — requests answered with an engine error.
    pub failed: Arc<Counter>,
    /// `scheduler_rejected_overloaded_total` — submissions rejected on a
    /// full queue.
    pub rejected_overloaded: Arc<Counter>,
    /// `scheduler_rejected_shutdown_total` — submissions rejected (or
    /// queued requests flushed) during drain.
    pub rejected_shutdown: Arc<Counter>,
    /// `scheduler_batches_total` — batches executed.
    pub batches: Arc<Counter>,
    /// `scheduler_batched_requests_total` — requests summed over all
    /// executed batches.
    pub batched_requests: Arc<Counter>,
    /// `scheduler_deduplicated_total` — requests served by a batch-mate's
    /// prediction.
    pub deduplicated: Arc<Counter>,
    /// `scheduler_max_batch` — largest batch executed (monotone maximum).
    pub max_batch: Arc<Counter>,
    /// `scheduler_deadline_shed_total` — requests whose deadline expired
    /// before inference, shed at batch assembly with `DeadlineExceeded`.
    pub deadline_shed: Arc<Counter>,
    /// `worker_panics_recovered_total` — batch executions that panicked
    /// and were converted to per-request internal errors (the worker
    /// survives and keeps draining).
    pub worker_panics_recovered: Arc<Counter>,
    /// `worker_respawns_total` — worker threads that died anyway and were
    /// replaced, so queue capacity is never lost.
    pub worker_respawns: Arc<Counter>,
    /// `queue_depth` — requests queued right now.
    pub queue_depth: Arc<Gauge>,
    /// `batch_size` — batch sizes, one record per executed batch.
    pub batch_size: Arc<Histogram>,
    /// `batch_latency_ns` — wall time of one batch execution (dedup,
    /// fusion and prediction, including any per-circuit fallback).
    pub batch_latency_ns: Arc<Histogram>,
}

impl SchedulerMetrics {
    /// Registers the scheduler's series in `registry`.
    pub fn registered(registry: &Registry) -> Self {
        SchedulerMetrics {
            submitted: registry.counter("scheduler_submitted_total"),
            completed: registry.counter("scheduler_completed_total"),
            failed: registry.counter("scheduler_failed_total"),
            rejected_overloaded: registry.counter("scheduler_rejected_overloaded_total"),
            rejected_shutdown: registry.counter("scheduler_rejected_shutdown_total"),
            batches: registry.counter("scheduler_batches_total"),
            batched_requests: registry.counter("scheduler_batched_requests_total"),
            deduplicated: registry.counter("scheduler_deduplicated_total"),
            max_batch: registry.counter("scheduler_max_batch"),
            deadline_shed: registry.counter("scheduler_deadline_shed_total"),
            worker_panics_recovered: registry.counter("worker_panics_recovered_total"),
            worker_respawns: registry.counter("worker_respawns_total"),
            queue_depth: registry.gauge("queue_depth"),
            batch_size: registry.histogram("batch_size"),
            batch_latency_ns: registry.histogram("batch_latency_ns"),
        }
    }
}

/// Telemetry handles of the structural circuit cache.
#[derive(Debug, Clone)]
pub struct CacheMetrics {
    /// `cache_text_hits_total` — requests served from the text-hash memo
    /// (byte-identical repeat, parsing skipped entirely).
    pub text_hits: Arc<Counter>,
    /// `cache_fingerprint_hits_total` — requests served from the
    /// structural level after a parse (textually new, structurally known).
    pub fingerprint_hits: Arc<Counter>,
    /// `cache_misses_total` — requests prepared from scratch.
    pub misses: Arc<Counter>,
    /// `cache_entries` — prepared circuits currently held.
    pub entries: Arc<Gauge>,
    /// `cache_capacity` — configured capacity (set once at construction).
    pub capacity: Arc<Gauge>,
}

impl CacheMetrics {
    /// Registers the cache's series in `registry`.
    pub fn registered(registry: &Registry) -> Self {
        CacheMetrics {
            text_hits: registry.counter("cache_text_hits_total"),
            fingerprint_hits: registry.counter("cache_fingerprint_hits_total"),
            misses: registry.counter("cache_misses_total"),
            entries: registry.gauge("cache_entries"),
            capacity: registry.gauge("cache_capacity"),
        }
    }
}

/// The server's telemetry: one [`Registry`] holding every series of the
/// request path — per-verb counters, per-stage latency histograms,
/// connection lifecycle, scheduler, cache, engine and GNN kernel — plus the
/// shared handles the subsystems record through.
///
/// Everything reads back out through a single [`Registry::snapshot`], so
/// the `stats`, `metrics` and `metrics_text` wire verbs report one
/// consistent point-in-time view instead of polling subsystems at
/// different instants.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    registry: Arc<Registry>,
    /// Engine + GNN kernel stage series (attach to the engine).
    pub engine: Arc<EngineMetrics>,
    /// Scheduler series (hand to [`crate::Scheduler::with_metrics`]).
    pub scheduler: SchedulerMetrics,
    /// Cache series (hand to [`crate::CircuitCache::with_metrics`]).
    pub cache: CacheMetrics,
    /// `requests_predict_total` — predict requests received.
    pub requests_predict: Arc<Counter>,
    /// `requests_stats_total` — `stats` verb requests.
    pub requests_stats: Arc<Counter>,
    /// `requests_metrics_total` — `metrics` verb requests.
    pub requests_metrics: Arc<Counter>,
    /// `requests_metrics_text_total` — `metrics_text` verb requests.
    pub requests_metrics_text: Arc<Counter>,
    /// `requests_shutdown_total` — `shutdown` verb requests.
    pub requests_shutdown: Arc<Counter>,
    /// `requests_unknown_total` — lines with an unknown verb or unparsable
    /// framing.
    pub requests_unknown: Arc<Counter>,
    /// `request_errors_total` — responses that carried an `error` field.
    pub request_errors: Arc<Counter>,
    /// `slow_requests_total` — predict requests over the slow-log
    /// threshold.
    pub slow_requests: Arc<Counter>,
    /// `stage_{parse,encode,plan,infer,respond}_ns` + `request_latency_ns`
    /// — the per-stage breakdown of predict requests.
    pub stages: StageSet,
    /// `connections_accepted_total` — connections accepted since start.
    pub connections_accepted: Arc<Counter>,
    /// `connections_closed_total` — connection threads that finished.
    pub connections_closed: Arc<Counter>,
    /// `connections_open` — connections being served right now.
    pub connections_open: Arc<Gauge>,
    /// `connections_reaped_total` — connections cut by the hygiene layer:
    /// idle past `idle_timeout`, or trickling a request line past
    /// `line_timeout` (slow-loris).
    pub connections_reaped: Arc<Counter>,
    /// `connections_rejected_total` — connections refused at accept because
    /// `max_connections` were already open.
    pub connections_rejected: Arc<Counter>,
    /// `write_timeouts_total` — response writes that timed out on a client
    /// that stopped reading (the connection is dropped).
    pub write_timeouts: Arc<Counter>,
    /// `request_panics_recovered_total` — request-handler panics converted
    /// into error responses instead of dropped connections.
    pub request_panics_recovered: Arc<Counter>,
    /// `eventloop_wakeups_total` — poller waits that returned (readiness,
    /// timer expiry, or a wake from the scheduler).
    pub eventloop_wakeups: Arc<Counter>,
    /// `eventloop_completions_total` — scheduler completions routed back to
    /// their connections by the event loop.
    pub eventloop_completions: Arc<Counter>,
    /// `write_backpressure_pauses_total` — connections whose request reading
    /// was paused because their response buffer crossed the high watermark.
    pub write_backpressure: Arc<Counter>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Creates a fresh registry and registers every serving series in it.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        let engine = Arc::new(EngineMetrics::registered(&registry));
        let scheduler = SchedulerMetrics::registered(&registry);
        let cache = CacheMetrics::registered(&registry);
        ServeMetrics {
            requests_predict: registry.counter("requests_predict_total"),
            requests_stats: registry.counter("requests_stats_total"),
            requests_metrics: registry.counter("requests_metrics_total"),
            requests_metrics_text: registry.counter("requests_metrics_text_total"),
            requests_shutdown: registry.counter("requests_shutdown_total"),
            requests_unknown: registry.counter("requests_unknown_total"),
            request_errors: registry.counter("request_errors_total"),
            slow_requests: registry.counter("slow_requests_total"),
            stages: StageSet::registered(&registry, "request_latency_ns"),
            connections_accepted: registry.counter("connections_accepted_total"),
            connections_closed: registry.counter("connections_closed_total"),
            connections_open: registry.gauge("connections_open"),
            connections_reaped: registry.counter("connections_reaped_total"),
            connections_rejected: registry.counter("connections_rejected_total"),
            write_timeouts: registry.counter("write_timeouts_total"),
            request_panics_recovered: registry.counter("request_panics_recovered_total"),
            eventloop_wakeups: registry.counter("eventloop_wakeups_total"),
            eventloop_completions: registry.counter("eventloop_completions_total"),
            write_backpressure: registry.counter("write_backpressure_pauses_total"),
            engine,
            scheduler,
            cache,
            registry,
        }
    }

    /// The registry every series lives in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// One consistent snapshot of every series.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

/// Renders a registry snapshot as the structured JSON of the `metrics` wire
/// verb: `counters` and `gauges` as name→value objects, `histograms` as
/// name→`{count, sum, max, p50, p90, p99, buckets}` with `buckets` a list of
/// `[upper_bound, count]` pairs (non-empty buckets only, ascending).
pub fn snapshot_to_value(snapshot: &Snapshot) -> Value {
    let counters: BTreeMap<String, Value> = snapshot
        .counters
        .iter()
        .map(|(name, &v)| (name.clone(), Value::UInt(v)))
        .collect();
    let gauges: BTreeMap<String, Value> = snapshot
        .gauges
        .iter()
        .map(|(name, &v)| {
            let value = if v >= 0 {
                Value::UInt(v as u64)
            } else {
                Value::Int(v)
            };
            (name.clone(), value)
        })
        .collect();
    let histograms: BTreeMap<String, Value> = snapshot
        .histograms
        .iter()
        .map(|(name, h)| {
            let mut entry = BTreeMap::new();
            entry.insert("count".to_string(), Value::UInt(h.count));
            entry.insert("sum".to_string(), Value::UInt(h.sum));
            entry.insert("max".to_string(), Value::UInt(h.max));
            entry.insert("p50".to_string(), Value::UInt(h.percentile(0.50)));
            entry.insert("p90".to_string(), Value::UInt(h.percentile(0.90)));
            entry.insert("p99".to_string(), Value::UInt(h.percentile(0.99)));
            entry.insert(
                "buckets".to_string(),
                Value::Array(
                    h.buckets
                        .iter()
                        .map(|b| Value::Array(vec![Value::UInt(b.le), Value::UInt(b.count)]))
                        .collect(),
                ),
            );
            (name.clone(), Value::Object(entry))
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert("counters".to_string(), Value::Object(counters));
    root.insert("gauges".to_string(), Value::Object(gauges));
    root.insert("histograms".to_string(), Value::Object(histograms));
    Value::Object(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_metrics_share_one_registry() {
        let metrics = ServeMetrics::new();
        metrics.requests_predict.inc();
        metrics.scheduler.submitted.inc();
        metrics.cache.misses.inc();
        metrics.engine.predict_ns.record(1_000);
        metrics.engine.gnn.levels_total.add(4);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("requests_predict_total"), 1);
        assert_eq!(snap.counter("scheduler_submitted_total"), 1);
        assert_eq!(snap.counter("cache_misses_total"), 1);
        assert_eq!(snap.counter("gnn_levels_total"), 4);
        assert_eq!(
            snap.histogram("engine_predict_ns").expect("series").count,
            1
        );
        // Stage histograms exist even before any request.
        assert!(snap.histogram("stage_infer_ns").is_some());
        assert!(snap.histogram("request_latency_ns").is_some());
    }

    #[test]
    fn snapshot_value_carries_percentiles_and_buckets() {
        let metrics = ServeMetrics::new();
        for v in [100u64, 200, 400, 800, 100_000] {
            metrics.scheduler.batch_latency_ns.record(v);
        }
        metrics.scheduler.queue_depth.set(-1); // gauges may be negative
        let value = snapshot_to_value(&metrics.snapshot());
        let root = value.as_object().expect("object");
        let histograms = root["histograms"].as_object().expect("object");
        let h = histograms["batch_latency_ns"].as_object().expect("object");
        assert_eq!(h["count"], Value::UInt(5));
        assert_eq!(h["max"], Value::UInt(100_000));
        let (Value::UInt(p50), Value::UInt(p99)) = (&h["p50"], &h["p99"]) else {
            panic!("percentiles must be unsigned integers");
        };
        assert!(p50 <= p99);
        let buckets = h["buckets"].as_array().expect("array");
        assert!(!buckets.is_empty());
        let gauges = root["gauges"].as_object().expect("object");
        assert_eq!(gauges["queue_depth"], Value::Int(-1));
    }
}
