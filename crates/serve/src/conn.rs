//! Per-connection state for the event-driven front end: the zero-copy
//! [`LineFramer`] that slices newline-delimited requests out of a growing
//! read buffer, the [`WriteBuf`] state machine that drains responses
//! through nonblocking partial writes, and the generation-tagged
//! connection table the event loop indexes by poller token.

use crate::poll::Interest;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// The request line grew past the configured byte limit without a
/// newline (or a complete line exceeded it): the stream cannot be
/// resynced and must be closed after one error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineOverflow;

/// How many bytes one `read` call appends at most; level-triggered
/// readiness re-delivers the event, so a flooding client cannot
/// monopolise the loop inside one readable event.
const READ_CHUNK: usize = 16 * 1024;

/// Slices newline-delimited request lines out of an append-only buffer
/// without copying: [`next_line`] returns `&[u8]` views directly into the
/// buffer, and consumed bytes are reclaimed by [`compact`] between
/// events. Byte-limit enforcement matches the blocking reader it
/// replaced: a complete line of up to `max_line` bytes *including* its
/// newline is accepted; `max_line` buffered bytes without a newline are
/// an overflow.
///
/// [`next_line`]: LineFramer::next_line
/// [`compact`]: LineFramer::compact
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// First unconsumed byte.
    start: usize,
    /// Scan resume point: everything in `start..scan` is known
    /// newline-free, so re-scans after short reads are O(new bytes).
    scan: usize,
    /// Max bytes of one line including its newline; 0 = unlimited.
    max_line: u64,
}

impl LineFramer {
    /// A framer enforcing `max_line` bytes per request line (0 disables
    /// the limit).
    pub fn new(max_line: u64) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            start: 0,
            scan: 0,
            max_line,
        }
    }

    /// Appends raw bytes (the test/driver-side entry point; the event
    /// loop uses [`LineFramer::read_from`]).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Reads one chunk from `r` into the buffer. `Ok(0)` is end-of-file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error (including `WouldBlock`).
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        let mut chunk = [0u8; READ_CHUNK];
        let n = r.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// The next complete request line, without its trailing newline, or
    /// `None` when the buffer holds only a partial line.
    ///
    /// # Errors
    ///
    /// [`LineOverflow`] once the line limit is breached — either a
    /// complete line longer than the limit, or that many buffered bytes
    /// with no newline in sight.
    pub fn next_line(&mut self) -> Result<Option<&[u8]>, LineOverflow> {
        match self.buf[self.scan..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let newline = self.scan + offset;
                let start = self.start;
                // +1: the limit covers the newline, exactly like the
                // blocking `take(max).read_line` it replaces.
                if self.max_line > 0 && (newline + 1 - start) as u64 > self.max_line {
                    return Err(LineOverflow);
                }
                self.start = newline + 1;
                self.scan = newline + 1;
                Ok(Some(&self.buf[start..newline]))
            }
            None => {
                self.scan = self.buf.len();
                if self.max_line > 0 && self.pending() as u64 >= self.max_line {
                    return Err(LineOverflow);
                }
                Ok(None)
            }
        }
    }

    /// Bytes buffered but not yet consumed (the partial line, if any).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Reclaims consumed bytes. Cheap to call after every batch of lines:
    /// it only moves memory once the consumed prefix dominates the buffer.
    pub fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            self.scan = 0;
        } else if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            // `scan` never trails `start`, so the scanned-prefix property
            // survives the shift unchanged.
            self.buf.drain(..self.start);
            self.scan -= self.start;
            self.start = 0;
        }
    }
}

/// Result of one [`WriteBuf::flush_to`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flush {
    /// Everything buffered went out; the buffer is empty.
    Drained,
    /// The socket stopped accepting bytes; `progressed` says whether any
    /// bytes left at all (progress resets the write deadline).
    Blocked {
        /// At least one byte was written before blocking.
        progressed: bool,
    },
}

/// The response-side state machine: responses append here, and the event
/// loop drains through nonblocking partial writes whenever the socket
/// reports writable.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// Queues response bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unwritten bytes still queued.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes as much as the socket accepts right now.
    ///
    /// # Errors
    ///
    /// Propagates hard write errors (connection reset, …); `WouldBlock`
    /// is not an error but a [`Flush::Blocked`] state.
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<Flush> {
        let mut progressed = false;
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Reclaim the written prefix so a long-lived slow
                    // reader cannot pin the high-water memory forever.
                    if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
                        self.buf.drain(..self.pos);
                        self.pos = 0;
                    }
                    return Ok(Flush::Blocked { progressed });
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(Flush::Drained)
    }
}

/// One live connection owned by the event loop.
pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Distinguishes this tenancy of the slab slot from earlier ones, so
    /// stale timers and stale scheduler completions cannot act on a
    /// recycled slot.
    pub generation: u64,
    pub framer: LineFramer,
    pub out: WriteBuf,
    /// The interest set currently registered with the poller.
    pub interest: Interest,
    /// Last instant a request line completed (or the connection opened);
    /// the idle deadline measures from here.
    pub last_activity: Instant,
    /// When the current partial request line started arriving; the
    /// line (slow-loris) deadline measures from here.
    pub line_started: Option<Instant>,
    /// The instant the blocked write buffer is cut at; pushed forward on
    /// every write that makes progress.
    pub write_deadline: Option<Instant>,
    /// Predict requests submitted to the scheduler and not yet answered.
    pub inflight: usize,
    /// Reading is paused: the write buffer crossed the high watermark
    /// (backpressure), so the loop stopped accepting new requests until
    /// the client drains responses.
    pub paused: bool,
    /// No more reads; close the connection once `out` drains.
    pub close_after_drain: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, generation: u64, max_line: u64, now: Instant) -> Conn {
        Conn {
            stream,
            generation,
            framer: LineFramer::new(max_line),
            out: WriteBuf::default(),
            interest: Interest::READABLE,
            last_activity: now,
            line_started: None,
            write_deadline: None,
            inflight: 0,
            paused: false,
            close_after_drain: false,
        }
    }

    /// The interest set this connection's state implies right now.
    pub fn desired_interest(&self) -> Interest {
        match (
            !self.paused && !self.close_after_drain,
            !self.out.is_empty(),
        ) {
            (true, true) => Interest::BOTH,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            // Hangup/error conditions still wake the loop.
            (false, false) => Interest::NONE,
        }
    }
}

/// The connection table: a slab indexed by poller token, with slot reuse
/// guarded by generations.
pub(crate) struct ConnTable {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    len: usize,
}

impl ConnTable {
    pub fn new() -> ConnTable {
        ConnTable {
            slots: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            len: 0,
        }
    }

    /// Claims a slot, returning `(slot, generation)`.
    pub fn insert(&mut self, build: impl FnOnce(u64) -> Conn) -> (usize, u64) {
        self.next_generation += 1;
        let generation = self.next_generation;
        let conn = build(generation);
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(conn);
                (slot, generation)
            }
            None => {
                self.slots.push(Some(conn));
                (self.slots.len() - 1, generation)
            }
        }
    }

    pub fn get_mut(&mut self, slot: usize) -> Option<&mut Conn> {
        self.slots.get_mut(slot).and_then(Option::as_mut)
    }

    /// Generation-checked access: `None` when the slot was recycled since
    /// `generation` was issued.
    pub fn get_generation(&mut self, slot: usize, generation: u64) -> Option<&mut Conn> {
        self.get_mut(slot).filter(|c| c.generation == generation)
    }

    pub fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(slot).and_then(Option::take)?;
        self.free.push(slot);
        self.len -= 1;
        Some(conn)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Every occupied slot index (snapshot, so the caller may mutate the
    /// table while iterating).
    pub fn occupied(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framer_slices_lines_across_arbitrary_chunks() {
        let mut framer = LineFramer::new(0);
        framer.push(b"{\"a\":1}\n{\"b\"");
        assert_eq!(framer.next_line().unwrap(), Some(&b"{\"a\":1}"[..]));
        assert_eq!(framer.next_line().unwrap(), None);
        assert_eq!(framer.pending(), 4);
        framer.push(b":2}\n\n{\"c\":3}\n");
        assert_eq!(framer.next_line().unwrap(), Some(&b"{\"b\":2}"[..]));
        assert_eq!(framer.next_line().unwrap(), Some(&b""[..]), "empty line");
        assert_eq!(framer.next_line().unwrap(), Some(&b"{\"c\":3}"[..]));
        assert_eq!(framer.next_line().unwrap(), None);
        assert_eq!(framer.pending(), 0);
        framer.compact();
        framer.push(b"tail\n");
        assert_eq!(framer.next_line().unwrap(), Some(&b"tail"[..]));
    }

    #[test]
    fn framer_byte_limit_matches_the_blocking_reader_boundary() {
        // A complete line of exactly `max` bytes INCLUDING the newline is
        // accepted — the same boundary the blocking take(max).read_line
        // reader had.
        let mut framer = LineFramer::new(8);
        framer.push(b"1234567\n");
        assert_eq!(framer.next_line().unwrap(), Some(&b"1234567"[..]));
        // One more byte is an overflow, even with the newline present.
        let mut framer = LineFramer::new(8);
        framer.push(b"12345678\n");
        assert_eq!(framer.next_line(), Err(LineOverflow));
        // And `max` buffered bytes with no newline overflow immediately —
        // the stream cannot be resynced.
        let mut framer = LineFramer::new(8);
        framer.push(b"1234567");
        assert_eq!(framer.next_line().unwrap(), None, "7 of 8 still waits");
        framer.push(b"8");
        assert_eq!(framer.next_line(), Err(LineOverflow));
    }

    #[test]
    fn framer_limit_applies_per_line_not_per_connection() {
        let mut framer = LineFramer::new(8);
        for _ in 0..100 {
            framer.push(b"1234567\n");
        }
        for _ in 0..100 {
            assert_eq!(framer.next_line().unwrap(), Some(&b"1234567"[..]));
            framer.compact();
        }
        assert_eq!(framer.next_line().unwrap(), None);
    }

    /// A writer that accepts a fixed quota of bytes then reports
    /// `WouldBlock` — the partial-write state machine in miniature.
    struct Throttled {
        accepted: Vec<u8>,
        quota: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.quota == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "throttled"));
            }
            let n = buf.len().min(self.quota);
            self.quota -= n;
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_drains_through_partial_writes() {
        let mut out = WriteBuf::default();
        out.push(b"hello ");
        out.push(b"world\n");
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: 4,
        };
        assert_eq!(
            out.flush_to(&mut sink).unwrap(),
            Flush::Blocked { progressed: true }
        );
        assert_eq!(out.len(), 8);
        // No quota at all: blocked without progress (the deadline is NOT
        // reset in this state).
        assert_eq!(
            out.flush_to(&mut sink).unwrap(),
            Flush::Blocked { progressed: false }
        );
        sink.quota = usize::MAX;
        assert_eq!(out.flush_to(&mut sink).unwrap(), Flush::Drained);
        assert!(out.is_empty());
        assert_eq!(sink.accepted, b"hello world\n");
    }

    #[test]
    fn conn_table_recycles_slots_with_fresh_generations() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let accept = move || {
            let _c = TcpStream::connect(addr).expect("connects");
            listener.accept().expect("accepts").0
        };
        let mut table = ConnTable::new();
        let now = Instant::now();
        let (slot_a, gen_a) = table.insert(|g| Conn::new(accept(), g, 0, now));
        let (slot_b, _gen_b) = table.insert(|g| Conn::new(accept(), g, 0, now));
        assert_eq!(table.len(), 2);
        assert_ne!(slot_a, slot_b);
        assert!(table.get_generation(slot_a, gen_a).is_some());
        table.remove(slot_a).expect("present");
        assert_eq!(table.len(), 1);
        // The slot is recycled with a new generation: stale handles to the
        // old tenancy must not resolve to the new one.
        let (slot_c, gen_c) = table.insert(|g| Conn::new(accept(), g, 0, now));
        assert_eq!(slot_c, slot_a, "slab reuses the freed slot");
        assert!(table.get_generation(slot_c, gen_a).is_none(), "stale gen");
        assert!(table.get_generation(slot_c, gen_c).is_some());
        assert_eq!(table.occupied().len(), 2);
    }
}
