//! Quickstart: build a circuit, feed it through the [`deepgate::Engine`]
//! (AIG normalisation + simulated probability labels), fine-tune briefly and
//! serve predictions through an [`deepgate::InferenceSession`].
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use deepgate::dataset::generators;
use deepgate::prelude::*;

fn main() -> Result<(), DeepGateError> {
    // 1. Configure the engine: model size, training recipe and the
    //    labelling pipeline all live behind one builder.
    let mut engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 32,
            num_iterations: 4,
            ..DeepGateConfig::default()
        })
        .trainer(TrainerConfig {
            epochs: 20,
            learning_rate: 3e-3,
            ..TrainerConfig::default()
        })
        .num_patterns(8_192)
        .build()?;

    // 2. Ingest a gate-level circuit (an 8-bit ALU). `prepare` maps it to
    //    AIG form, labels every node with its logic-simulated signal
    //    probability and encodes the learning representation.
    let source = NetlistSource::from(generators::alu(8));
    let circuits = engine.prepare(&source)?;
    let circuit = &circuits[0];
    println!(
        "circuit graph: {} nodes, {} levels, {} reconvergence skip edges",
        circuit.num_nodes,
        circuit.max_level,
        circuit.skip_edges.len()
    );

    // 3. Fine-tune on this single circuit (a real workflow trains on
    //    thousands of sub-circuits; see the `table2` experiment binary).
    let before = engine.evaluate(&circuits)?;
    let history = engine.train(&circuits, &circuits)?;
    let after = engine.evaluate(&circuits)?;
    println!(
        "avg prediction error: {before:.4} before training -> {after:.4} after {} epochs",
        history.epochs.len()
    );

    // 4. Serve through a session: batched prediction plus the per-gate
    //    embeddings downstream EDA tasks would consume.
    let session = engine.session();
    let batch = session.predict_batch(&circuits)?;
    println!("served {} circuits in one batch", batch.len());
    let embeddings = session.model().embeddings(circuit);
    println!(
        "learned {}-dimensional embeddings for {} gates",
        embeddings.cols(),
        embeddings.rows()
    );
    Ok(())
}
