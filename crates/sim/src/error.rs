use std::fmt;

/// Errors produced by the logic simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The number of supplied input words does not match the number of
    /// primary inputs of the circuit.
    InputCountMismatch {
        /// Number of primary inputs the circuit has.
        expected: usize,
        /// Number of input words supplied.
        got: usize,
    },
    /// The requested number of patterns is zero.
    NoPatterns,
    /// Exhaustive enumeration was requested for a circuit with too many
    /// primary inputs.
    TooManyInputsForExact {
        /// Number of primary inputs of the circuit.
        inputs: usize,
        /// Maximum supported for exhaustive enumeration.
        max: usize,
    },
    /// The circuit failed validation before simulation.
    InvalidCircuit(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input words, got {got}")
            }
            SimError::NoPatterns => write!(f, "at least one simulation pattern is required"),
            SimError::TooManyInputsForExact { inputs, max } => write!(
                f,
                "exhaustive enumeration supports at most {max} inputs, circuit has {inputs}"
            ),
            SimError::InvalidCircuit(msg) => write!(f, "invalid circuit: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
        assert!(SimError::NoPatterns.to_string().contains("pattern"));
        assert!(SimError::InputCountMismatch {
            expected: 3,
            got: 1
        }
        .to_string()
        .contains('3'));
    }
}
