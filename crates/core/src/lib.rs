//! The DeepGate model, trainer and evaluation metrics — the primary
//! contribution of *DeepGate: Learning Neural Representations of Logic
//! Gates* (DAC 2022).
//!
//! DeepGate learns a `d`-dimensional vector for every gate of an AIG-form
//! circuit by regressing logic-simulated signal probabilities. Its GNN
//! combines four ingredients on top of the recurrent DAG-GNN machinery of
//! [`deepgate_gnn`]:
//!
//! 1. **Additive attention aggregation** (Eq. 5) that learns to weigh
//!    controlling fan-ins more than non-controlling ones.
//! 2. **GRU state updates with fixed gate-type input** (Eq. 6) so the gate
//!    information does not vanish over recurrence iterations.
//! 3. **Reversed propagation layers** that model logic implication from
//!    outputs back towards inputs.
//! 4. **Skip connections for reconvergence structures** whose edge attribute
//!    is a sinusoidal positional encoding of the stem-to-node level distance
//!    (Eq. 7).
//!
//! [`DeepGate`] bundles the model with its parameter store; [`Trainer`]
//! optimises any [`ProbabilityModel`](deepgate_gnn::ProbabilityModel) (the
//! baselines of Table II included) with the Adam + L1 recipe of the paper.
//!
//! # Example
//!
//! ```rust
//! use deepgate_core::{DeepGate, DeepGateConfig};
//! use deepgate_gnn::{CircuitGraph, FeatureEncoding};
//! use deepgate_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut netlist = Netlist::new("toy");
//! let a = netlist.add_input("a");
//! let b = netlist.add_input("b");
//! let g = netlist.add_gate(GateKind::And, &[a, b])?;
//! netlist.mark_output(g, "y");
//! let circuit = CircuitGraph::from_netlist(&netlist, FeatureEncoding::AigGates, None);
//!
//! let deepgate = DeepGate::new(DeepGateConfig { hidden_dim: 16, ..DeepGateConfig::default() });
//! let probabilities = deepgate.predict(&circuit);
//! assert_eq!(probabilities.len(), circuit.num_nodes);
//! let embeddings = deepgate.embeddings(&circuit);
//! assert_eq!(embeddings.shape(), [circuit.num_nodes, 16]);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod trainer;

pub use model::{DeepGate, DeepGateConfig};
pub use trainer::{average_prediction_error, EpochStats, Trainer, TrainerConfig, TrainingHistory};
