//! Shared infrastructure for the experiment binaries that regenerate the
//! tables and figures of the DeepGate paper.
//!
//! Every binary accepts `--full` (or the `DEEPGATE_FULL=1` environment
//! variable) to run at paper scale; the default quick scale finishes on a
//! laptop CPU in minutes and preserves the qualitative shape of the results
//! (model ordering, relative improvements) rather than absolute values.
//!
//! Binaries:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — dataset statistics |
//! | `table2` | Table II — model / aggregator comparison |
//! | `table3` | Table III — generalisation to five large designs |
//! | `table4` | Table IV — effect of the AIG transformation |
//! | `fig_iterations` | Section IV-D2 — error vs recurrence iterations |
//! | `ablation` | extra ablation of DeepGate's design choices |
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use deepgate_core::{Trainer, TrainerConfig};
use deepgate_dataset::{Dataset, DatasetConfig, SuiteKind};
use deepgate_gnn::ProbabilityModel;
use deepgate_nn::ParamStore;
use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// The scale an experiment runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced-scale configuration that completes in minutes on a CPU.
    Quick,
    /// Paper-scale configuration (hours of CPU time).
    Full,
}

impl Scale {
    /// Determines the scale from the command line (`--full` / `--quick`) and
    /// the `DEEPGATE_FULL` environment variable.
    pub fn from_env_and_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--full") {
            return Scale::Full;
        }
        if args.iter().any(|a| a == "--quick") {
            return Scale::Quick;
        }
        match std::env::var("DEEPGATE_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// A short label for report headers.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Experiment-wide hyper-parameters derived from the scale.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSettings {
    /// Scale the settings were derived from.
    pub scale: Scale,
    /// Designs generated per suite.
    pub designs_per_suite: usize,
    /// Design size scale factor.
    pub size_scale: f64,
    /// Simulation patterns per circuit.
    pub num_patterns: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Hidden dimension of every model.
    pub hidden_dim: usize,
    /// Recurrence iterations T for recurrent models.
    pub num_iterations: usize,
    /// Scale factor for the large designs of Table III.
    pub large_design_scale: f64,
}

impl ExperimentSettings {
    /// Settings for a scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => ExperimentSettings {
                scale,
                designs_per_suite: 16,
                size_scale: 0.2,
                num_patterns: 4_096,
                epochs: 20,
                learning_rate: 3e-3,
                hidden_dim: 32,
                num_iterations: 6,
                large_design_scale: 0.15,
            },
            Scale::Full => ExperimentSettings {
                scale,
                designs_per_suite: 64,
                size_scale: 1.0,
                num_patterns: 100_000,
                epochs: 60,
                learning_rate: 1e-4,
                hidden_dim: 64,
                num_iterations: 10,
                large_design_scale: 1.0,
            },
        }
    }

    /// The dataset configuration used by the training experiments.
    pub fn dataset_config(&self, transform_to_aig: bool, suites: Vec<SuiteKind>) -> DatasetConfig {
        DatasetConfig {
            suites,
            designs_per_suite: self.designs_per_suite,
            num_patterns: self.num_patterns,
            transform_to_aig,
            optimize: true,
            train_fraction: 0.85,
            size_scale: self.size_scale,
            seed: 42,
        }
    }

    /// The trainer configuration used by the training experiments.
    pub fn trainer_config(&self) -> TrainerConfig {
        TrainerConfig {
            epochs: self.epochs,
            learning_rate: self.learning_rate,
            grad_clip: 5.0,
            shuffle_seed: 7,
            eval_every: 0,
        }
    }
}

/// Generates the shared training dataset for an experiment, printing timing
/// information.
///
/// # Panics
///
/// Panics if dataset generation fails (invalid settings).
pub fn build_dataset(settings: &ExperimentSettings, transform_to_aig: bool) -> Dataset {
    build_dataset_for_suites(settings, transform_to_aig, SuiteKind::ALL.to_vec())
}

/// Generates a dataset restricted to specific suites.
///
/// # Panics
///
/// Panics if dataset generation fails (invalid settings).
pub fn build_dataset_for_suites(
    settings: &ExperimentSettings,
    transform_to_aig: bool,
    suites: Vec<SuiteKind>,
) -> Dataset {
    let start = Instant::now();
    let config = settings.dataset_config(transform_to_aig, suites);
    let dataset = Dataset::generate(&config).expect("dataset generation");
    eprintln!(
        "[dataset] {} circuits ({} train / {} test), transform={}, {:.1}s",
        dataset.len(),
        dataset.train.len(),
        dataset.test.len(),
        transform_to_aig,
        start.elapsed().as_secs_f64()
    );
    dataset
}

/// Trains a model on a dataset and returns the average prediction error on
/// the test split.
///
/// # Panics
///
/// Panics if training fails (the experiment datasets are always labelled,
/// so a failure here is a harness bug, not user input).
pub fn train_and_evaluate<M: ProbabilityModel + ?Sized>(
    model: &M,
    store: &mut ParamStore,
    dataset: &Dataset,
    settings: &ExperimentSettings,
) -> f64 {
    let start = Instant::now();
    let mut trainer = Trainer::new(settings.trainer_config());
    let history = trainer
        .train(model, store, &dataset.train, &dataset.test)
        .expect("experiment circuits are labelled");
    let error = history.best_valid_error().unwrap_or_else(|| {
        deepgate_core::average_prediction_error(model, store, &dataset.test)
            .expect("experiment circuits are labelled")
    });
    eprintln!(
        "[train] {}: final loss {:.4}, test error {:.4}, {:.1}s",
        model.name(),
        history.final_train_loss().unwrap_or(0.0),
        error,
        start.elapsed().as_secs_f64()
    );
    error
}

/// One row of an experiment report.
#[derive(Debug, Clone, Serialize)]
pub struct ReportRow {
    /// Row label (model name, design name, …).
    pub label: String,
    /// Named values of the row.
    pub values: Vec<(String, String)>,
}

/// A full experiment report: a table plus metadata, printed to stdout and
/// saved as JSON under `target/experiments/`.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Experiment identifier (e.g. `table2`).
    pub experiment: String,
    /// Paper artefact being reproduced (e.g. `Table II`).
    pub reproduces: String,
    /// Scale label.
    pub scale: String,
    /// The rows.
    pub rows: Vec<ReportRow>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(experiment: &str, reproduces: &str, scale: Scale) -> Self {
        Report {
            experiment: experiment.to_string(),
            reproduces: reproduces.to_string(),
            scale: scale.label().to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<(String, String)>) {
        self.rows.push(ReportRow {
            label: label.into(),
            values,
        });
    }

    /// Prints the report as an aligned text table.
    pub fn print(&self) {
        println!();
        println!(
            "=== {} — reproduces {} (scale: {}) ===",
            self.experiment, self.reproduces, self.scale
        );
        if self.rows.is_empty() {
            println!("(no rows)");
            return;
        }
        let headers: Vec<String> = std::iter::once("".to_string())
            .chain(self.rows[0].values.iter().map(|(k, _)| k.clone()))
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            widths[0] = widths[0].max(row.label.len());
            for (i, (_, v)) in row.values.iter().enumerate() {
                widths[i + 1] = widths[i + 1].max(v.len());
            }
        }
        let print_line = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            println!("| {} |", line.join(" | "));
        };
        print_line(&headers);
        println!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let cells: Vec<String> = std::iter::once(row.label.clone())
                .chain(row.values.iter().map(|(_, v)| v.clone()))
                .collect();
            print_line(&cells);
        }
        println!();
    }

    /// Saves the report as JSON under `target/experiments/<experiment>.json`.
    /// Failures to write are reported on stderr but do not abort the
    /// experiment.
    pub fn save(&self) {
        let dir = PathBuf::from("target/experiments");
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("[report] could not create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{}.json", self.experiment));
        match serde_json::to_string_pretty(self) {
            Ok(json) => {
                if let Err(e) = fs::write(&path, json) {
                    eprintln!("[report] could not write {}: {e}", path.display());
                } else {
                    eprintln!("[report] saved {}", path.display());
                }
            }
            Err(e) => eprintln!("[report] serialisation failed: {e}"),
        }
    }
}

/// Formats an error value the way the paper's tables do.
pub fn fmt_error(value: f64) -> String {
    format!("{value:.4}")
}

/// Formats a relative reduction percentage.
pub fn fmt_reduction(baseline: f64, improved: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:.2}%", (baseline - improved) / baseline * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_scale_with_mode() {
        let quick = ExperimentSettings::for_scale(Scale::Quick);
        let full = ExperimentSettings::for_scale(Scale::Full);
        assert!(full.designs_per_suite > quick.designs_per_suite);
        assert!(full.num_patterns > quick.num_patterns);
        assert_eq!(full.num_iterations, 10);
        assert_eq!(Scale::Quick.label(), "quick");
    }

    #[test]
    fn report_formatting() {
        let mut report = Report::new("test", "Table X", Scale::Quick);
        report.push_row("ModelA", vec![("Error".to_string(), fmt_error(0.12345))]);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].values[0].1, "0.1235");
        report.print();
    }

    #[test]
    fn reduction_formatting() {
        assert_eq!(fmt_reduction(0.04, 0.01), "75.00%");
        assert_eq!(fmt_reduction(0.0, 0.01), "n/a");
    }
}
