use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded source of random simulation patterns.
///
/// Each call to [`PatternSource::next_word_row`] yields one `u64` per primary
/// input, i.e. 64 independent uniformly-random input patterns packed
/// bit-parallel. The stream is fully determined by the seed, which keeps the
/// dataset labelling pipeline reproducible.
#[derive(Debug, Clone)]
pub struct PatternSource {
    rng: SmallRng,
    num_inputs: usize,
}

impl PatternSource {
    /// Creates a pattern source for a circuit with `num_inputs` primary
    /// inputs, seeded with `seed`.
    pub fn new(num_inputs: usize, seed: u64) -> Self {
        PatternSource {
            rng: SmallRng::seed_from_u64(seed),
            num_inputs,
        }
    }

    /// Number of primary inputs each row covers.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Returns the next row of pattern words: one `u64` (64 patterns) per
    /// primary input.
    pub fn next_word_row(&mut self) -> Vec<u64> {
        (0..self.num_inputs).map(|_| self.rng.gen()).collect()
    }

    /// Returns `count` rows of pattern words.
    pub fn word_rows(&mut self, count: usize) -> Vec<Vec<u64>> {
        (0..count).map(|_| self.next_word_row()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = PatternSource::new(5, 42);
        let mut b = PatternSource::new(5, 42);
        assert_eq!(a.word_rows(10), b.word_rows(10));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PatternSource::new(5, 1);
        let mut b = PatternSource::new(5, 2);
        assert_ne!(a.word_rows(4), b.word_rows(4));
    }

    #[test]
    fn row_shape() {
        let mut src = PatternSource::new(7, 3);
        let row = src.next_word_row();
        assert_eq!(row.len(), 7);
        assert_eq!(src.num_inputs(), 7);
    }

    #[test]
    fn bits_are_roughly_balanced() {
        // Sanity check that the generator is not obviously biased.
        let mut src = PatternSource::new(1, 9);
        let ones: u32 = src
            .word_rows(256)
            .iter()
            .map(|row| row[0].count_ones())
            .sum();
        let total = 256 * 64;
        let ratio = ones as f64 / total as f64;
        assert!((0.45..0.55).contains(&ratio), "ratio {ratio}");
    }
}
